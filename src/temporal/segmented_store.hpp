#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "index/figdb_store.hpp"
#include "index/retrieval_engine.hpp"
#include "temporal/burst_detector.hpp"
#include "temporal/segment_manifest.hpp"
#include "temporal/temporal_merger.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"

/// \file segmented_store.hpp
/// Time-partitioned store: ingest lands in epoch-bucketed segments so
/// FIG-T's δ-decay is applied as a per-segment weight at merge time
/// instead of rescoring every posting (ROADMAP item 4).
///
/// LAYOUT. `<dir>/SEGMENTS` (segment_manifest.hpp) names the live
/// segments; `<dir>/seg-<id>/` holds one FigDbStore per segment (its own
/// WAL + atomic checkpoint — durability is per segment, like shards).
/// Segment `s` owns the contiguous global-id range [base_s, base_s+n_s)
/// and the epoch bucket [min_epoch_s, max_epoch_s]; Create() re-ids the
/// base corpus in (epoch, original id) order so both stay contiguous —
/// the temporal analogue of an LSM level assignment. UnionCorpus() (live
/// segments concatenated in base order) is the store's logical corpus.
///
/// THE SEGMENT CLOCK. Exactly one segment — the LAST — is active; all
/// earlier ones are sealed and immutable (the figdb-lint rule
/// `segment-timestamp-monotonicity` flags append paths that bypass this
/// file). Ingest routes by the object's month: months inside the active
/// bucket land there, a month past the bucket ceiling SEALS the active
/// segment (checkpoint-compact, then one atomic SEGMENTS commit that
/// both finalises the sealed entry and opens the next bucket), and a
/// month below the active floor — clock skew, out-of-order producers —
/// is CLAMPED up to the floor (the store's clock is authoritative; the
/// `temporal/clock_skew` fail-point injects exactly this fault and the
/// matrix in tests/temporal_test.cpp asserts the clamp accounting).
///
/// PINNED GLOBAL STATISTICS (the sharded-store invariant): one feature
/// matrix + correlation model is built over the union corpus in
/// global-id order at Create and re-derived at Recover; every segment
/// engine adopts it, so a segment engine scores an object bit-identically
/// to an unsharded engine over the union corpus.
///
/// DECAYED SEARCH (temporal_merger.hpp has the equivalence argument):
/// each segment scales its clique lists by the local factor
/// δ^(ref_s − month), re-sorts, TA-merges into an exact locally-decayed
/// top-k with a stop bound, and the merger folds the legs under
/// w_s = δ^(now − ref_s) with the global certificate max_s(w_s·bound_s).
/// ref_s = min(max_epoch_s, now), so the newest segment always carries
/// w_s == 1.0. SearchExhaustiveDecayed() is the reference implementation
/// (every posting rescored by δ^(now−month) over one union engine) the
/// equivalence suite and the fig10/fig11 `--segmented` cross-check run
/// against.
///
/// RETENTION & MERGE are crash-recoverable manifest protocols, the shard
/// rebalance discipline (old-or-new-never-a-mix):
///
///   RunRetention(now): sealed segments whose whole bucket has aged out
///   of the sliding window (max_epoch + retention_epochs <= now) are
///   first marked kTombstoned in one atomic SEGMENTS commit (THE commit
///   point), then their directories are deleted, then a clean manifest
///   is committed. Recovery finishes the deletion half: tombstoned
///   entries are dropped and their directories removed.
///
///   MergeSealed(): compacts ALL sealed segments into one — builds the
///   merged FigDbStore fully durable under a fresh id, commits one
///   atomic SEGMENTS swap (victims out, merged entry in; global ids are
///   preserved because victims are a contiguous base prefix), then
///   deletes the victim directories. Recovery sweeps whichever side the
///   manifest does not name.
///
/// Both protocols thread numbered crash sites through the
/// `temporal/merge_crash` and `temporal/retention_crash` fail-points;
/// the crash matrix drives every site and asserts old-or-new.
///
/// WRITER/READER CONTRACT: the whole store is single-threaded (FigDbStore
/// contract, inherited). Search lazily refreshes per-segment engine views
/// after mutations, so it is a mutating call too.

namespace figdb::temporal {

class SegmentedStore {
 public:
  struct Options {
    /// Epochs (corpus months) per time bucket. 1 = a segment per month.
    std::uint32_t epochs_per_segment = 1;
    /// Sliding window: segments whose max epoch is more than this many
    /// epochs behind `now` at RunRetention time expire. 0 = keep forever.
    std::uint32_t retention_epochs = 0;
    /// Per-segment durability substrate options.
    index::FigDbStore::Options store;
    /// Query-path options shared by every segment engine and the
    /// exhaustive reference engine.
    index::EngineOptions engine;
    /// Burst/event-detection thresholds (burst_detector.hpp).
    BurstOptions burst;
  };

  /// Partitions \p base into epoch buckets under \p dir (created if
  /// missing) and commits the generation-1 SEGMENTS manifest. Objects are
  /// re-identified in (epoch, original id) order — the returned store's
  /// UnionCorpus() is the canonical ordering. kFailedPrecondition if
  /// \p dir already holds a segmented store.
  static util::StatusOr<SegmentedStore> Create(const std::string& dir,
                                               const corpus::Corpus& base,
                                               Options options);

  /// Rebuilds the store from SEGMENTS: finishes interrupted retention
  /// (tombstoned entries are dropped and their directories removed),
  /// sweeps seg-* directories the manifest does not name, recovers every
  /// segment's FigDbStore, validates sealed sizes against the manifest
  /// (kDataLoss on mismatch), re-derives the pinned global statistics
  /// from the union corpus, and reseeds the burst detector.
  static util::StatusOr<SegmentedStore> Recover(const std::string& dir,
                                                Options options);

  SegmentedStore(SegmentedStore&&) = default;
  SegmentedStore& operator=(SegmentedStore&&) = default;
  SegmentedStore(const SegmentedStore&) = delete;
  SegmentedStore& operator=(const SegmentedStore&) = delete;

  // ----------------------------------------------------------------- writer

  /// Routes one object through the segment clock (see above: in-bucket
  /// months append to the active segment, later months roll it, earlier
  /// months clamp to the active floor) and ingests it durably. Returns
  /// the GLOBAL id.
  util::StatusOr<corpus::ObjectId> Ingest(corpus::MediaObject object);

  /// Tombstones a global id. Only ids owned by the ACTIVE segment may be
  /// removed — sealed segments are immutable by contract; their objects
  /// leave through retention (kFailedPrecondition otherwise).
  util::Status Remove(corpus::ObjectId global_id);

  /// Checkpoints every segment store (fold WAL into the checkpoint).
  util::Status Checkpoint();

  /// Applies the sliding window at epoch \p now_epoch (crash-recoverable;
  /// see the protocol above). No-op when retention_epochs == 0 or nothing
  /// has aged out.
  util::Status RunRetention(std::uint32_t now_epoch);

  /// Compacts all sealed segments into one (crash-recoverable; see the
  /// protocol above). No-op with fewer than two sealed segments.
  util::Status MergeSealed();

  // ---------------------------------------------------------------- queries

  /// Merge-time decayed top-k: per-segment locally-decayed TA legs folded
  /// by the TemporalMerger. Requires delta ∈ (0, 1] and
  /// now_epoch >= ClockEpoch() (querying the past would need decay
  /// amplification, which the factorization does not model).
  util::StatusOr<TemporalSearchResult> Search(const corpus::MediaObject& query,
                                              std::size_t k, double delta,
                                              std::uint32_t now_epoch);

  /// Reference implementation: exhaustive decayed rescoring (every clique
  /// posting weighted by δ^(now−month)) over one engine spanning the
  /// union corpus. Same validation as Search.
  util::StatusOr<std::vector<core::SearchResult>> SearchExhaustiveDecayed(
      const corpus::MediaObject& query, std::size_t k, double delta,
      std::uint32_t now_epoch);

  // ----------------------------------------------------------- introspection

  const SegmentManifest& Manifest() const { return manifest_; }
  std::size_t NumSegments() const { return segments_.size(); }
  /// Newest epoch the clock has admitted (ingest floor moves with it).
  std::uint32_t ClockEpoch() const { return clock_epoch_; }
  /// Ingests whose month regressed below the active floor and was clamped.
  std::uint64_t SkewClamped() const { return skew_clamped_; }
  /// Global id space size across live segments (tombstones included).
  std::size_t TotalObjects() const;
  std::size_t LiveObjects() const;
  const Options& GetOptions() const { return options_; }
  const std::string& Dir() const { return dir_; }

  /// Event detection over everything the store has observed (seeded by
  /// replay at Create/Recover, fed by Ingest).
  const BurstDetector& Bursts() const { return detector_; }

  /// Live segments concatenated in base order — the logical corpus the
  /// exhaustive reference scores over.
  corpus::Corpus UnionCorpus() const;

  /// Manifest entry of segment slot \p i (count live for the active one).
  const SegmentEntry& EntryOf(std::size_t i) const {
    return segments_[i]->entry;
  }
  /// Durability store of segment slot \p i (WAL stats, wound flag).
  const index::FigDbStore& StoreOf(std::size_t i) const {
    return segments_[i]->store;
  }

  static std::string ManifestPath(const std::string& dir);
  static std::string SegmentDir(const std::string& dir, std::uint32_t id);

 private:
  /// One live segment. Non-movable after construction: the engine view
  /// points into store's corpus, so Segment lives behind unique_ptr.
  struct Segment {
    Segment(SegmentEntry e, index::FigDbStore s, index::CliqueIndex qi)
        : entry(e), store(std::move(s)), query_index(std::move(qi)) {}
    Segment(const Segment&) = delete;
    Segment& operator=(const Segment&) = delete;

    SegmentEntry entry;
    index::FigDbStore store;
    /// Query index over the segment corpus built with the GLOBAL
    /// correlations (the store's own index uses local stats).
    index::CliqueIndex query_index;
    /// Lazily (re)built compacted engine view; null or stale when dirty.
    std::unique_ptr<index::FigRetrievalEngine> engine;
    bool dirty = true;
  };

  SegmentedStore() = default;

  /// Assembles the in-memory store over recovered/created segment stores:
  /// pins global statistics from \p union_corpus, builds per-segment
  /// query indexes, reseeds the burst detector.
  static SegmentedStore Open(std::string dir, SegmentManifest manifest,
                             Options options,
                             std::vector<index::FigDbStore> stores,
                             const corpus::Corpus& union_corpus);

  /// Seals the active segment and opens a fresh one whose bucket covers
  /// \p month (the single-commit roll described above).
  util::Status RollActiveSegment(std::uint32_t month);
  /// Rebuilds stale engine views (and the union view if \p with_union).
  void RefreshViews(bool with_union);
  /// Atomically writes \p manifest to SEGMENTS (the caller assigns
  /// manifest_ only after the commit lands).
  util::Status CommitManifest(const SegmentManifest& manifest);
  Segment& Active() { return *segments_.back(); }

  std::string dir_;
  Options options_;
  SegmentManifest manifest_;
  /// Global statistics lineage, pinned at Create/Recover and shared by
  /// every segment engine and the union reference engine.
  std::shared_ptr<const stats::FeatureMatrix> matrix_;
  std::shared_ptr<const stats::CorrelationModel> correlations_;
  std::vector<std::unique_ptr<Segment>> segments_;
  /// Lazy reference view for SearchExhaustiveDecayed: a union-corpus copy
  /// plus an engine over it (corpus_ must outlive engine — declaration
  /// order gives reverse destruction).
  std::unique_ptr<corpus::Corpus> union_corpus_;
  std::unique_ptr<index::FigRetrievalEngine> union_engine_;
  bool union_dirty_ = true;
  BurstDetector detector_;
  std::uint32_t clock_epoch_ = 0;
  std::uint64_t skew_clamped_ = 0;
  /// Serializes the public entry points (Ingest/Remove/Checkpoint/
  /// RunRetention/MergeSealed — and Search/SearchExhaustiveDecayed, which
  /// lazily refresh engine views, so they mutate too). The single-threaded
  /// contract above still holds for callers; this lock turns a violation
  /// into serialization instead of corruption, and gives the store a
  /// named node in the deadlock-freedom layer's lock-order graph. Behind
  /// unique_ptr because a Mutex member would delete the move operations
  /// the StatusOr<SegmentedStore> factories rely on.
  std::unique_ptr<util::Mutex> writer_mutex_ =
      std::make_unique<util::Mutex>("temporal.SegmentedStore.writer");
};

}  // namespace figdb::temporal
