#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

/// \file segment_manifest.hpp
/// The temporal store's segment manifest — the single source of truth for
/// which time-bucketed segments are live, sealed, or tombstoned.
///
/// A segmented store directory looks like
///
///   <dir>/SEGMENTS           this file (written via util/atomic_file)
///   <dir>/seg-<id>/          one FigDbStore per segment
///
/// Each segment owns a contiguous global-id range [base, base+count) and a
/// closed epoch range [min_epoch, max_epoch] (epochs are the corpus month
/// ticks). At most one segment is ACTIVE (mutable, taking ingest); all
/// earlier segments are SEALED (immutable — the figdb-lint rule
/// `segment-timestamp-monotonicity` enforces that only the segment clock
/// inside src/temporal appends to segment stores). Retention tombstones a
/// sealed segment FIRST (the commit point: an atomically-replaced SEGMENTS
/// naming it kTombstoned), THEN deletes its directory, THEN commits a
/// clean manifest without it. Recovery keeps exactly the non-tombstoned
/// segments the manifest names, finishes deleting tombstoned ones, and
/// sweeps unlisted seg-* trees — either the old window or the new one,
/// never a mix (same discipline as the shard rebalance manifest).
///
/// Framing (all little-endian, mirroring the shard manifest format):
///   fixed32  magic      0xf19d7e55
///   fixed32  version    1
///   fixed32  crc32      over the payload bytes
///   payload: varint generation (>= 1)
///            varint num_segments (0 .. kMaxSegments)
///            per segment:
///              varint id
///              varint min_epoch
///              varint max_epoch  (>= min_epoch)
///              varint base      (global-id base; strictly increasing)
///              varint count
///              u8     state     (SegmentState)
/// Segment ids must be unique (NOT necessarily sorted: a merge of old
/// sealed segments mints a fresh id that sits earliest in base order),
/// bases must be strictly increasing and non-overlapping, epochs must be
/// non-overlapping and non-decreasing across segments, and only the LAST
/// segment may be kActive. Trailing bytes after the payload are rejected. ParseSegmentManifest is the one untrusted-bytes entry point —
/// the fuzz_segment_manifest target and the recovery path share it.

namespace figdb::temporal {

inline constexpr std::uint32_t kSegmentManifestMagic = 0xf19d7e55;
inline constexpr std::uint32_t kSegmentManifestVersion = 1;
/// Hard ceiling on live segments; manifests beyond it are malformed.
inline constexpr std::uint32_t kMaxSegments = 4096;

/// Lifecycle of one time bucket. kActive takes ingest; kSealed is
/// immutable and serves; kTombstoned is logically deleted — recovery
/// finishes removing its directory and drops it from the next manifest.
enum class SegmentState : std::uint8_t {
  kActive = 0,
  kSealed = 1,
  kTombstoned = 2,
};

struct SegmentEntry {
  std::uint32_t id = 0;
  std::uint32_t min_epoch = 0;
  std::uint32_t max_epoch = 0;
  std::uint64_t base = 0;   ///< first global object id owned by the segment
  std::uint64_t count = 0;  ///< number of global ids owned (may be 0)
  SegmentState state = SegmentState::kActive;

  bool operator==(const SegmentEntry&) const = default;
};

struct SegmentManifest {
  std::uint64_t generation = 1;
  std::vector<SegmentEntry> segments;

  bool operator==(const SegmentManifest&) const = default;
};

std::string SerializeSegmentManifest(const SegmentManifest& manifest);

/// Rejects with kInvalidArgument (wrong magic/version/ranges/ordering/
/// trailing bytes) or kDataLoss (CRC mismatch, truncation). Accepted
/// manifests round-trip: Parse(Serialize(m)) == m.
[[nodiscard]] util::StatusOr<SegmentManifest> ParseSegmentManifest(
    std::string_view bytes);

}  // namespace figdb::temporal
