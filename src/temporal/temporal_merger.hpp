#pragma once

#include <cstdint>
#include <vector>

#include "core/retriever.hpp"

/// \file temporal_merger.hpp
/// Merge-time δ-decay: folds per-segment top-k answers into the global
/// decayed top-k under the global TA certificate.
///
/// THE EQUIVALENCE ARGUMENT. Exhaustive decayed rescoring weights every
/// object by δ^(now−m(o)) where m(o) is the object's epoch. The segmented
/// path factors that weight per segment s with reference epoch ref_s:
///
///   δ^(now−m) = δ^(now−ref_s) · δ^(ref_s−m)
///                └── w_s ────┘  └─ applied inside the segment ─┘
///
/// The segment scales its clique lists by the LOCAL factor δ^(ref_s−m)
/// (ages ≥ 0 because ref_s ≥ every epoch in the segment), re-sorts, and
/// runs the ordinary TA merge — its answer is the exact locally-decayed
/// top-k with a stop bound `bound_s` dominating every unreturned object's
/// locally-decayed score. The merger then multiplies each leg by the
/// UNIFORM positive weight w_s. Uniform positive scaling preserves the
/// within-segment order, so the global decayed top-k is a subset of the
/// union of per-segment top-k lists, and
///
///   global_bound = max_s (w_s · bound_s)
///
/// dominates every object no leg returned — the same certificate shape
/// PR 6's shard router exports through the ThresholdMerge/ExhaustiveMerge
/// `stop_bound` out-params. Floating point caveat: pow does not factor
/// bit-exactly, so only legs with w_s == 1.0 (ref_s == now — always true
/// for the newest segment, hence for every single-segment store) are
/// bit-identical to exhaustive rescoring; other legs agree within a
/// relative 1e-9, asserted by tests/temporal_test.cpp for segment counts
/// {1, 2, 4, 8}.

namespace figdb::temporal {

/// One segment's answer to a decayed query: exact locally-decayed top-k
/// with GLOBAL object ids, plus the leg's TA stop bound and merge weight.
struct SegmentLeg {
  std::uint32_t segment_id = 0;
  /// w_s = δ^(now − ref_s); uniform over the leg, ∈ (0, 1].
  double weight = 1.0;
  /// Locally-decayed scores (δ^(ref_s−m) already applied), ids global.
  std::vector<core::SearchResult> entries;
  /// TA stop bound over the leg's locally-decayed scores.
  double bound = 0.0;
};

/// The merged decayed answer plus its certificate and provenance.
struct TemporalSearchResult {
  std::vector<core::SearchResult> results;
  /// max_s(w_s · bound_s): no unreturned object scores above this.
  double ta_bound = 0.0;
  std::uint32_t segments_merged = 0;
  /// Weight range across merged legs ([1, 1] for a single segment).
  double min_weight = 1.0;
  double max_weight = 1.0;
};

/// Scales every leg by its weight, merges by (score desc, id asc) and
/// truncates to \p k. Each leg must hold at least the segment's top-k (or
/// everything it has) for the result to be the exact global decayed top-k.
TemporalSearchResult MergeSegmentTopK(std::vector<SegmentLeg> legs,
                                      std::size_t k);

}  // namespace figdb::temporal
