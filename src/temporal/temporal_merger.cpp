#include "temporal/temporal_merger.hpp"

#include <algorithm>

namespace figdb::temporal {

TemporalSearchResult MergeSegmentTopK(std::vector<SegmentLeg> legs,
                                      std::size_t k) {
  TemporalSearchResult out;
  bool first = true;
  for (SegmentLeg& leg : legs) {
    // Multiplying by exactly 1.0 is the identity in IEEE 754, which is
    // what makes the newest segment (and the single-segment store)
    // bit-identical to exhaustive decayed rescoring.
    if (leg.weight != 1.0)
      for (core::SearchResult& e : leg.entries) e.score *= leg.weight;
    out.ta_bound = std::max(out.ta_bound, leg.weight * leg.bound);
    if (first) {
      out.min_weight = out.max_weight = leg.weight;
      first = false;
    } else {
      out.min_weight = std::min(out.min_weight, leg.weight);
      out.max_weight = std::max(out.max_weight, leg.weight);
    }
    ++out.segments_merged;
    out.results.insert(out.results.end(), leg.entries.begin(),
                       leg.entries.end());
  }
  std::sort(out.results.begin(), out.results.end(),
            [](const core::SearchResult& a, const core::SearchResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.object < b.object;
            });
  if (out.results.size() > k) out.results.resize(k);
  return out;
}

}  // namespace figdb::temporal
