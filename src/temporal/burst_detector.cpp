#include "temporal/burst_detector.hpp"

#include <algorithm>
#include <cmath>

namespace figdb::temporal {

BurstDetector::BurstDetector(BurstOptions options) : options_(options) {}

void BurstDetector::ObserveObject(const corpus::MediaObject& obj) {
  const std::uint32_t epoch = obj.month;
  max_epoch_ = std::max(max_epoch_, epoch);
  ++observed_objects_;
  for (const corpus::FeatureOccurrence& f : obj.features) {
    std::vector<std::uint64_t>& per_epoch = counts_[f.feature];
    if (per_epoch.size() <= epoch) per_epoch.resize(epoch + 1, 0);
    per_epoch[epoch] += f.frequency;
  }
}

std::uint64_t BurstDetector::CountOf(corpus::FeatureKey feature,
                                     std::uint32_t epoch) const {
  auto it = counts_.find(feature);
  if (it == counts_.end() || it->second.size() <= epoch) return 0;
  return it->second[epoch];
}

std::vector<BurstEvent> BurstDetector::Detect() const {
  std::vector<BurstEvent> events;
  for (const auto& [feature, per_epoch] : counts_) {
    // Trailing prefix sums let every epoch's baseline come from one pass.
    double sum = 0.0, sum_sq = 0.0;
    for (std::uint32_t e = 0; e < per_epoch.size(); ++e) {
      const double count = double(per_epoch[e]);
      if (e >= options_.min_baseline_epochs &&
          per_epoch[e] >= options_.min_support) {
        const double n = double(e);
        const double mean = sum / n;
        const double variance = std::max(sum_sq / n - mean * mean, 0.0);
        const double stddev = std::sqrt(variance);
        const double z = (count - mean) / std::max(stddev, 1.0);
        if (z >= options_.threshold) {
          BurstEvent ev;
          ev.feature = feature;
          ev.epoch = e;
          ev.count = per_epoch[e];
          ev.baseline_mean = mean;
          ev.baseline_stddev = stddev;
          ev.score = z;
          events.push_back(ev);
        }
      }
      sum += count;
      sum_sq += count * count;
    }
  }
  std::sort(events.begin(), events.end(),
            [](const BurstEvent& a, const BurstEvent& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.epoch != b.epoch) return a.epoch < b.epoch;
              return a.feature < b.feature;
            });
  return events;
}

}  // namespace figdb::temporal
