#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "corpus/media_object.hpp"

/// \file burst_detector.hpp
/// Social event detection over the ingest stream, following the
/// interaction-graph burst formulation of Wang/Sundaram/Xie
/// (arXiv:1208.2547): an *event* is a feature (tag / visual word / user
/// edge) whose occurrence rate in some epoch spikes far above its own
/// trailing baseline.
///
/// The detector keeps one counter per (feature, epoch) — fed object by
/// object, in any order, across segment boundaries (the SegmentedStore
/// replays every segment's corpus through it at recovery and forwards
/// live ingest). Scoring is a z-score against the trailing per-feature
/// baseline:
///
///   z(f, e) = (count(f, e) − mean(f, <e)) / max(stddev(f, <e), 1)
///
/// with a minimum-support floor so one-off rare tags don't alert. The
/// stddev floor of 1 count makes flat-zero baselines well-defined and
/// demands at least `min_support` raw occurrences regardless of history.
/// Detection is deterministic: events order by (score desc, epoch asc,
/// feature asc).

namespace figdb::temporal {

struct BurstOptions {
  /// Epochs of history required before an epoch may alert (the baseline).
  std::uint32_t min_baseline_epochs = 2;
  /// Raw occurrences in the epoch required before it may alert.
  std::uint32_t min_support = 8;
  /// z-score at or above which a (feature, epoch) becomes an event.
  double threshold = 3.0;
};

/// One detected burst: feature `feature` spiked in epoch `epoch`.
struct BurstEvent {
  corpus::FeatureKey feature = 0;
  std::uint32_t epoch = 0;
  std::uint64_t count = 0;       ///< occurrences in the bursting epoch
  double baseline_mean = 0.0;    ///< trailing mean occurrences per epoch
  double baseline_stddev = 0.0;  ///< trailing stddev (before the 1.0 floor)
  double score = 0.0;            ///< z-score against the trailing baseline

  bool operator==(const BurstEvent&) const = default;
};

class BurstDetector {
 public:
  explicit BurstDetector(BurstOptions options = {});

  /// Accumulates every feature occurrence of \p obj into the epoch bucket
  /// given by the object's month. Safe to call in any epoch order (the
  /// clock-skew fault matrix feeds out-of-order months through here).
  void ObserveObject(const corpus::MediaObject& obj);

  /// Raw occurrence count for (feature, epoch). Zero when never seen.
  std::uint64_t CountOf(corpus::FeatureKey feature, std::uint32_t epoch) const;

  /// Scans every tracked feature over epochs [min_baseline_epochs,
  /// max observed epoch] and returns the scored events, ordered by
  /// (score desc, epoch asc, feature asc).
  std::vector<BurstEvent> Detect() const;

  const BurstOptions& Options() const { return options_; }
  std::uint64_t ObservedObjects() const { return observed_objects_; }

 private:
  BurstOptions options_;
  std::uint32_t max_epoch_ = 0;
  std::uint64_t observed_objects_ = 0;
  /// feature -> per-epoch occurrence counts (indexed by epoch, ragged).
  std::unordered_map<corpus::FeatureKey, std::vector<std::uint64_t>> counts_;
};

}  // namespace figdb::temporal
