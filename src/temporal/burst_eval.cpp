#include "temporal/burst_eval.hpp"

#include <algorithm>
#include <unordered_map>

namespace figdb::temporal {

BurstEvalResult EvaluateBursts(const std::vector<BurstEvent>& events,
                               const std::vector<corpus::BurstLabel>& labels) {
  BurstEvalResult out;

  // term FeatureKey -> indices of labels claiming it. A term can appear in
  // several labels (topics share no tag pools, but windows may overlap a
  // re-used topic across datasets), so keep the full list.
  std::unordered_map<corpus::FeatureKey, std::vector<std::size_t>> claims;
  std::vector<bool> recalled(labels.size(), false);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i].terms.empty()) continue;  // fully pruned: unmatchable
    ++out.labels;
    for (corpus::FeatureKey term : labels[i].terms)
      claims[term].push_back(i);
  }

  for (const BurstEvent& e : events) {
    if (corpus::TypeOf(e.feature) != corpus::FeatureType::kText) continue;
    ++out.detected_text;
    auto it = claims.find(e.feature);
    if (it == claims.end()) continue;
    bool matched = false;
    for (std::size_t i : it->second) {
      const auto& epochs = labels[i].epochs;
      if (std::find(epochs.begin(), epochs.end(), e.epoch) == epochs.end())
        continue;
      matched = true;
      if (!recalled[i]) {
        recalled[i] = true;
        ++out.recalled_labels;
      }
    }
    if (matched) ++out.matched_events;
  }

  out.precision = out.detected_text == 0
                      ? 1.0
                      : double(out.matched_events) / double(out.detected_text);
  out.recall = out.labels == 0
                   ? 1.0
                   : double(out.recalled_labels) / double(out.labels);
  return out;
}

}  // namespace figdb::temporal
