#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

/// \file decay.hpp
/// The one δ-decay kernel shared by every temporal scorer in the tree.
///
/// FIG-T (PAPER.md Eq. 10) weights an interest observed at epoch t when
/// scoring at epoch `now` by δ^(now−t), δ ∈ (0, 1]. Three call sites used
/// to inline `std::pow(decay, ...)` independently (recsys scoring,
/// explanation, and budgeted recommendation); the segmented store adds a
/// fourth (merge-time per-segment weights). Any drift between them breaks
/// the fig10/fig11 `--segmented` cross-check, so they all route here.
///
/// The factorization the merge-time path relies on:
///
///   δ^(now−t) = δ^(now−ref) · δ^(ref−t)
///
/// holds exactly in the reals but NOT bit-exactly in floating point
/// (pow does not factor). A single segment uses ref == now (weight 1.0)
/// and is therefore bit-identical to exhaustive rescoring; multi-segment
/// results agree within a relative 1e-9 (documented and asserted by
/// tests/temporal_test.cpp across segment counts {1,2,4,8}).

namespace figdb::temporal {

/// δ^max(age, 0): the paper's decay for an observation `age` epochs old.
/// Future-dated observations (negative age, e.g. clock skew) are clamped
/// to weight 1.0 rather than amplified.
inline double DecayWeight(double delta, int age) {
  return std::pow(delta, double(std::max(age, 0)));
}

/// Convenience for the common (now, then) epoch pair.
inline double DecayWeightAt(double delta, std::uint32_t now_epoch,
                            std::uint32_t then_epoch) {
  return DecayWeight(delta, int(now_epoch) - int(then_epoch));
}

}  // namespace figdb::temporal
