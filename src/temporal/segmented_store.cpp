#include "temporal/segmented_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <unordered_set>
#include <utility>

#include "temporal/decay.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/failpoint.hpp"
#include "util/thread_annotations.hpp"

namespace figdb::temporal {
namespace {

using util::Status;
using util::StatusOr;

/// Read-only whole-file slurp (the manifest is tiny). kNotFound when the
/// file does not exist, kUnavailable on a read error.
StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::string bytes;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::Unavailable("read error on " + path);
  return bytes;
}

/// One numbered crash site of the seal-and-roll / merge protocol. Firing
/// simulates the process dying here: the caller aborts with kUnavailable
/// and the test harness re-opens the directory through Recover().
Status MergeCrashPoint(const std::string& site) {
  if (FIGDB_FAILPOINT("temporal/merge_crash"))
    return Status::Unavailable("injected segment-merge crash " + site);
  return Status::Ok();
}

/// Same shape for the retention protocol's numbered crash sites.
Status RetentionCrashPoint(const std::string& site) {
  if (FIGDB_FAILPOINT("temporal/retention_crash"))
    return Status::Unavailable("injected retention crash " + site);
  return Status::Ok();
}

/// Deletes every seg-* subtree of \p dir whose id is not in \p keep.
/// Unparsable seg-* names are junk from no committed state and go too.
/// Best-effort (recovery re-runs it).
void SweepSegmentDirs(const std::string& dir,
                      const std::unordered_set<std::uint32_t>& keep) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) != 0) continue;
    const std::string suffix = name.substr(4);
    char* end = nullptr;
    const unsigned long id = std::strtoul(suffix.c_str(), &end, 10);
    const bool parsed = end != nullptr && *end == '\0' && !suffix.empty();
    if (parsed && keep.count(static_cast<std::uint32_t>(id)) != 0) continue;
    std::filesystem::remove_all(entry.path(), ec);
  }
}

/// Final deterministic order of every decayed answer: score desc, id asc
/// (the TemporalMerger's order, applied to the reference path too so the
/// two are comparable entry by entry).
void SortByScoreThenId(std::vector<core::SearchResult>& results) {
  std::sort(results.begin(), results.end(),
            [](const core::SearchResult& a, const core::SearchResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.object < b.object;
            });
}

}  // namespace

std::string SegmentedStore::ManifestPath(const std::string& dir) {
  return dir + "/SEGMENTS";
}
std::string SegmentedStore::SegmentDir(const std::string& dir,
                                       std::uint32_t id) {
  return dir + "/seg-" + std::to_string(id);
}

StatusOr<SegmentedStore> SegmentedStore::Create(const std::string& dir,
                                                const corpus::Corpus& base,
                                                Options options) {
  if (options.epochs_per_segment == 0)
    return Status::InvalidArgument("epochs_per_segment must be >= 1");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    return Status::Unavailable("cannot create " + dir + ": " + ec.message());
  if (std::filesystem::exists(ManifestPath(dir)))
    return Status::FailedPrecondition(dir +
                                      " already holds a segmented store");
  // A crashed earlier Create may have left segment directories with no
  // manifest; without a manifest nothing was ever committed.
  SweepSegmentDirs(dir, {});

  // Re-id the base corpus in (epoch, original id) order so every segment
  // owns a contiguous global-id range — the store's canonical ordering.
  const std::uint32_t eps = options.epochs_per_segment;
  std::vector<corpus::ObjectId> order(base.Size());
  for (corpus::ObjectId i = 0; i < base.Size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](corpus::ObjectId a, corpus::ObjectId b) {
                     return base.Object(a).month < base.Object(b).month;
                   });

  SegmentManifest manifest;
  manifest.generation = 1;
  corpus::Corpus union_corpus = base.Prefix(0);
  std::vector<index::FigDbStore> stores;
  std::size_t i = 0;
  std::uint32_t next_id = 0;
  while (i < order.size() || manifest.segments.empty()) {
    // One pass per epoch bucket actually present (plus one empty active
    // segment for an empty base, so the store always has a clock).
    const std::uint32_t bucket =
        i < order.size() ? base.Object(order[i]).month / eps : 0;
    SegmentEntry entry;
    entry.id = next_id++;
    entry.min_epoch = bucket * eps;
    entry.max_epoch = bucket * eps + eps - 1;
    entry.base = union_corpus.Size();
    corpus::Corpus sc = base.Prefix(0);
    while (i < order.size() && base.Object(order[i]).month / eps == bucket) {
      sc.Add(base.Object(order[i]));
      union_corpus.Add(base.Object(order[i]));
      ++i;
    }
    entry.count = sc.Size();
    entry.state =
        i < order.size() ? SegmentState::kSealed : SegmentState::kActive;
    auto store = index::FigDbStore::Create(SegmentDir(dir, entry.id), sc,
                                           options.store);
    if (!store.ok()) return store.status();
    stores.push_back(std::move(*store));
    manifest.segments.push_back(entry);
  }

  // Commit point: the manifest names the segment set only after every
  // segment store is fully durable.
  FIGDB_RETURN_IF_ERROR(util::AtomicWriteFile(
      ManifestPath(dir), SerializeSegmentManifest(manifest)));
  FIGDB_RETURN_IF_ERROR(util::SyncParentDirectory(ManifestPath(dir)));
  return Open(dir, std::move(manifest), std::move(options), std::move(stores),
              union_corpus);
}

StatusOr<SegmentedStore> SegmentedStore::Recover(const std::string& dir,
                                                 Options options) {
  if (options.epochs_per_segment == 0)
    return Status::InvalidArgument("epochs_per_segment must be >= 1");
  auto manifest_bytes = ReadFileBytes(ManifestPath(dir));
  if (!manifest_bytes.ok())
    return Status::NotFound("no segmented store at " + dir + " (" +
                            manifest_bytes.status().message() + ")");
  auto parsed = ParseSegmentManifest(*manifest_bytes);
  FIGDB_RETURN_IF_ERROR(parsed.status());
  SegmentManifest manifest = std::move(*parsed);
  if (manifest.segments.empty())
    return Status::DataLoss("segment manifest names no segments");

  // Finish an interrupted retention: a tombstoned entry is logically gone
  // (the tombstone commit WAS the commit point), so delete whatever is
  // left of its directory and drop it from the manifest.
  std::error_code ec;
  bool had_tombstones = false;
  std::vector<SegmentEntry> live;
  for (const SegmentEntry& entry : manifest.segments) {
    if (entry.state == SegmentState::kTombstoned) {
      std::filesystem::remove_all(SegmentDir(dir, entry.id), ec);
      had_tombstones = true;
    } else {
      live.push_back(entry);
    }
  }
  if (had_tombstones) {
    manifest.segments = std::move(live);
    if (manifest.segments.empty())
      return Status::DataLoss(
          "segment manifest holds only tombstones; the active segment is "
          "missing");
    manifest.generation += 1;
    FIGDB_RETURN_IF_ERROR(util::AtomicWriteFile(
        ManifestPath(dir), SerializeSegmentManifest(manifest)));
    FIGDB_RETURN_IF_ERROR(util::SyncParentDirectory(ManifestPath(dir)));
  }

  std::unordered_set<std::uint32_t> keep;
  for (const SegmentEntry& entry : manifest.segments) keep.insert(entry.id);
  SweepSegmentDirs(dir, keep);

  std::vector<index::FigDbStore> stores;
  stores.reserve(manifest.segments.size());
  for (SegmentEntry& entry : manifest.segments) {
    auto store =
        index::FigDbStore::Recover(SegmentDir(dir, entry.id), options.store);
    if (!store.ok())
      return Status{store.status().code(),
                    "segment " + std::to_string(entry.id) + ": " +
                        std::string(store.status().message())};
    const std::size_t got = store->GetCorpus().Size();
    if (entry.state == SegmentState::kSealed) {
      // Sealed segments are immutable: any size drift means a directory
      // from a different lineage was swapped in.
      if (got != entry.count)
        return Status::DataLoss("sealed segment " + std::to_string(entry.id) +
                                " holds " + std::to_string(got) +
                                " objects, manifest requires " +
                                std::to_string(entry.count));
    } else {
      // The active segment may have ingested past the last manifest write
      // (its WAL replays them); it can never hold less.
      if (got < entry.count)
        return Status::DataLoss("active segment " + std::to_string(entry.id) +
                                " holds " + std::to_string(got) +
                                " objects, manifest requires at least " +
                                std::to_string(entry.count));
      entry.count = got;
    }
    stores.push_back(std::move(*store));
  }

  // Rebuild the union corpus in global-id order so the statistics lineage
  // is re-derived exactly as Create derived it (bit-identity across
  // restarts).
  corpus::Corpus union_corpus = stores[0].GetCorpus().Prefix(0);
  for (const index::FigDbStore& store : stores)
    for (corpus::ObjectId l = 0; l < store.GetCorpus().Size(); ++l)
      union_corpus.Add(store.GetCorpus().Object(l));
  return Open(dir, std::move(manifest), std::move(options), std::move(stores),
              union_corpus);
}

SegmentedStore SegmentedStore::Open(std::string dir, SegmentManifest manifest,
                                    Options options,
                                    std::vector<index::FigDbStore> stores,
                                    const corpus::Corpus& union_corpus) {
  FIGDB_CHECK(manifest.segments.size() == stores.size());
  SegmentedStore out;
  out.dir_ = std::move(dir);
  out.options_ = std::move(options);
  out.matrix_ = std::make_shared<const stats::FeatureMatrix>(
      stats::FeatureMatrix::Build(union_corpus));
  out.correlations_ = std::make_shared<const stats::CorrelationModel>(
      union_corpus.SharedContext(), out.matrix_,
      out.options_.engine.correlations);
  out.detector_ = BurstDetector(out.options_.burst);
  out.segments_.reserve(stores.size());
  for (std::size_t s = 0; s < stores.size(); ++s) {
    index::CliqueIndex qi = index::CliqueIndex::Build(
        stores[s].GetCorpus(), *out.correlations_, out.options_.engine.index);
    out.segments_.push_back(std::make_unique<Segment>(
        manifest.segments[s], std::move(stores[s]), std::move(qi)));
  }
  out.manifest_ = std::move(manifest);
  out.clock_epoch_ = out.segments_.back()->entry.min_epoch;
  for (corpus::ObjectId g = 0; g < union_corpus.Size(); ++g) {
    const corpus::MediaObject& obj = union_corpus.Object(g);
    out.clock_epoch_ = std::max(out.clock_epoch_, std::uint32_t(obj.month));
    out.detector_.ObserveObject(obj);
  }
  return out;
}

Status SegmentedStore::CommitManifest(const SegmentManifest& manifest) {
  FIGDB_RETURN_IF_ERROR(util::AtomicWriteFile(
      ManifestPath(dir_), SerializeSegmentManifest(manifest)));
  return util::SyncParentDirectory(ManifestPath(dir_));
}

Status SegmentedStore::RollActiveSegment(std::uint32_t month) {
  Segment& old_active = Active();
  FIGDB_RETURN_IF_ERROR(MergeCrashPoint(
      "seal: before checkpoint of segment " +
      std::to_string(old_active.entry.id)));
  // Seal = compact through the checkpoint path: the WAL folds into one
  // atomic checkpoint, so the sealed segment recovers without replay.
  FIGDB_RETURN_IF_ERROR(old_active.store.Checkpoint());

  const std::uint32_t eps = options_.epochs_per_segment;
  std::uint32_t next_id = 0;
  for (const SegmentEntry& e : manifest_.segments)
    next_id = std::max(next_id, e.id + 1);
  SegmentEntry next;
  next.id = next_id;
  next.min_epoch = (month / eps) * eps;
  next.max_epoch = next.min_epoch + eps - 1;
  next.base = old_active.entry.base + old_active.store.GetCorpus().Size();
  next.count = 0;
  next.state = SegmentState::kActive;

  FIGDB_RETURN_IF_ERROR(MergeCrashPoint("seal: before creating segment " +
                                        std::to_string(next.id)));
  auto store = index::FigDbStore::Create(
      SegmentDir(dir_, next.id), old_active.store.GetCorpus().Prefix(0),
      options_.store);
  if (!store.ok()) return store.status();

  // Single commit point: one atomic SEGMENTS replace both finalises the
  // sealed entry (state + final count) and opens the next bucket. A crash
  // on either side leaves old-or-new: before it the manifest still names
  // the old active segment and recovery sweeps seg-<next>; after it the
  // roll is fully visible.
  SegmentManifest next_manifest = manifest_;
  next_manifest.generation += 1;
  next_manifest.segments.back().state = SegmentState::kSealed;
  next_manifest.segments.back().count = old_active.store.GetCorpus().Size();
  next_manifest.segments.push_back(next);
  FIGDB_RETURN_IF_ERROR(MergeCrashPoint("seal: before manifest commit"));
  FIGDB_RETURN_IF_ERROR(CommitManifest(next_manifest));
  manifest_ = std::move(next_manifest);

  old_active.entry = manifest_.segments[manifest_.segments.size() - 2];
  index::CliqueIndex qi = index::CliqueIndex::Build(
      store->GetCorpus(), *correlations_, options_.engine.index);
  segments_.push_back(
      std::make_unique<Segment>(next, std::move(*store), std::move(qi)));
  union_dirty_ = true;
  return MergeCrashPoint("seal: after manifest commit");
}

StatusOr<corpus::ObjectId> SegmentedStore::Ingest(corpus::MediaObject object) {
  util::MutexLock lock(*writer_mutex_);
  if (FIGDB_FAILPOINT("temporal/clock_skew")) {
    // Deterministic out-of-order producer: rewind the timestamp below the
    // active segment's floor so the clamp path must fire.
    const std::uint32_t floor = Active().entry.min_epoch;
    object.month = floor > 0 ? static_cast<std::uint16_t>(floor - 1) : 0;
  }
  if (std::uint32_t(object.month) < Active().entry.min_epoch) {
    // Late arrival from before the active bucket: the segment clock is
    // authoritative, so the object is credited to the bucket floor (the
    // epoch invariant of the manifest admits nothing earlier).
    object.month = static_cast<std::uint16_t>(Active().entry.min_epoch);
    ++skew_clamped_;
  }
  const std::uint32_t eps = options_.epochs_per_segment;
  if (std::uint32_t(object.month) / eps > Active().entry.min_epoch / eps)
    FIGDB_RETURN_IF_ERROR(RollActiveSegment(object.month));

  Segment& seg = Active();
  auto local = seg.store.Ingest(std::move(object));
  if (!local.ok()) return local.status();
  const corpus::MediaObject& stored = seg.store.GetCorpus().Object(*local);
  {
    util::ScopedRole writer(seg.query_index.WriterCap());
    seg.query_index.AddObject(stored, *correlations_);
  }
  seg.entry.count = seg.store.GetCorpus().Size();
  seg.dirty = true;
  union_dirty_ = true;
  detector_.ObserveObject(stored);
  clock_epoch_ = std::max(clock_epoch_, std::uint32_t(stored.month));
  return static_cast<corpus::ObjectId>(seg.entry.base) + *local;
}

Status SegmentedStore::Remove(corpus::ObjectId global_id) {
  util::MutexLock lock(*writer_mutex_);
  for (auto& seg_ptr : segments_) {
    Segment& seg = *seg_ptr;
    if (global_id < seg.entry.base ||
        global_id >= seg.entry.base + seg.entry.count)
      continue;
    if (seg.entry.state != SegmentState::kActive)
      return Status::FailedPrecondition(
          "global id " + std::to_string(global_id) + " lives in sealed "
          "segment " + std::to_string(seg.entry.id) +
          "; sealed segments are immutable (objects leave via retention)");
    const auto local =
        static_cast<corpus::ObjectId>(global_id - seg.entry.base);
    FIGDB_RETURN_IF_ERROR(seg.store.Remove(local));
    {
      util::ScopedRole writer(seg.query_index.WriterCap());
      seg.query_index.RemoveObject(local);
    }
    seg.dirty = true;
    union_dirty_ = true;
    return Status::Ok();
  }
  return Status::NotFound("global id " + std::to_string(global_id) +
                          " is not owned by any live segment");
}

Status SegmentedStore::Checkpoint() {
  util::MutexLock lock(*writer_mutex_);
  for (auto& seg : segments_) {
    Status st = seg->store.Checkpoint();
    if (!st.ok())
      return Status{st.code(), "segment " + std::to_string(seg->entry.id) +
                                   ": " + std::string(st.message())};
  }
  return Status::Ok();
}

Status SegmentedStore::RunRetention(std::uint32_t now_epoch) {
  util::MutexLock lock(*writer_mutex_);
  if (options_.retention_epochs == 0) return Status::Ok();
  std::vector<std::uint32_t> victims;
  for (const auto& seg : segments_)
    if (seg->entry.state == SegmentState::kSealed &&
        seg->entry.max_epoch + options_.retention_epochs <= now_epoch)
      victims.push_back(seg->entry.id);
  if (victims.empty()) return Status::Ok();
  const auto is_victim = [&](std::uint32_t id) {
    return std::find(victims.begin(), victims.end(), id) != victims.end();
  };

  // Phase 1 — THE commit point: one atomic manifest replace marks every
  // aged-out segment tombstoned. From here the window slide is the truth;
  // recovery finishes the deletions below if we die mid-way.
  FIGDB_RETURN_IF_ERROR(
      RetentionCrashPoint("retention: before tombstone commit"));
  SegmentManifest next = manifest_;
  next.generation += 1;
  for (SegmentEntry& e : next.segments)
    if (is_victim(e.id)) e.state = SegmentState::kTombstoned;
  FIGDB_RETURN_IF_ERROR(CommitManifest(next));
  manifest_ = std::move(next);
  segments_.erase(std::remove_if(segments_.begin(), segments_.end(),
                                 [&](const std::unique_ptr<Segment>& s) {
                                   return is_victim(s->entry.id);
                                 }),
                  segments_.end());
  union_dirty_ = true;
  FIGDB_RETURN_IF_ERROR(
      RetentionCrashPoint("retention: after tombstone commit"));

  // Phase 2: physically delete, then commit the clean manifest.
  std::error_code ec;
  for (std::uint32_t id : victims) {
    std::filesystem::remove_all(SegmentDir(dir_, id), ec);
    FIGDB_RETURN_IF_ERROR(RetentionCrashPoint(
        "retention: after removing segment " + std::to_string(id)));
  }
  SegmentManifest clean = manifest_;
  clean.generation += 1;
  clean.segments.erase(
      std::remove_if(clean.segments.begin(), clean.segments.end(),
                     [](const SegmentEntry& e) {
                       return e.state == SegmentState::kTombstoned;
                     }),
      clean.segments.end());
  FIGDB_RETURN_IF_ERROR(CommitManifest(clean));
  manifest_ = std::move(clean);
  return RetentionCrashPoint("retention: after clean commit");
}

Status SegmentedStore::MergeSealed() {
  util::MutexLock lock(*writer_mutex_);
  std::vector<Segment*> victims;
  std::unordered_set<std::uint32_t> victim_ids;
  for (auto& seg : segments_)
    if (seg->entry.state == SegmentState::kSealed) {
      victims.push_back(seg.get());
      victim_ids.insert(seg->entry.id);
    }
  if (victims.size() < 2) return Status::Ok();

  // Phase 1: build the merged segment fully durable under a fresh id.
  // Victims are a contiguous base prefix, so concatenating them in order
  // preserves every global id. Tombstoned slots materialise as empty
  // objects (they score zero and never surface).
  FIGDB_RETURN_IF_ERROR(
      MergeCrashPoint("merge: before building merged segment"));
  SegmentEntry merged;
  std::uint32_t next_id = 0;
  for (const SegmentEntry& e : manifest_.segments)
    next_id = std::max(next_id, e.id + 1);
  merged.id = next_id;
  merged.min_epoch = victims.front()->entry.min_epoch;
  merged.max_epoch = victims.back()->entry.max_epoch;
  merged.base = victims.front()->entry.base;
  merged.state = SegmentState::kSealed;
  corpus::Corpus mc = victims.front()->store.GetCorpus().Prefix(0);
  for (Segment* v : victims)
    for (corpus::ObjectId l = 0; l < v->store.GetCorpus().Size(); ++l)
      mc.Add(v->store.GetCorpus().Object(l));
  merged.count = mc.Size();
  auto store =
      index::FigDbStore::Create(SegmentDir(dir_, merged.id), mc,
                                options_.store);
  if (!store.ok()) return store.status();
  FIGDB_RETURN_IF_ERROR(
      MergeCrashPoint("merge: after building merged segment"));

  // Phase 2 — the commit point: one atomic manifest replace swaps the
  // victims for the merged entry. Before it recovery sweeps seg-<merged>;
  // after it recovery sweeps the victims.
  SegmentManifest next = manifest_;
  next.generation += 1;
  next.segments.erase(std::remove_if(next.segments.begin(),
                                     next.segments.end(),
                                     [&](const SegmentEntry& e) {
                                       return victim_ids.count(e.id) != 0;
                                     }),
                      next.segments.end());
  next.segments.insert(next.segments.begin(), merged);
  FIGDB_RETURN_IF_ERROR(MergeCrashPoint("merge: before manifest commit"));
  FIGDB_RETURN_IF_ERROR(CommitManifest(next));
  manifest_ = std::move(next);

  segments_.erase(std::remove_if(segments_.begin(), segments_.end(),
                                 [&](const std::unique_ptr<Segment>& s) {
                                   return victim_ids.count(s->entry.id) != 0;
                                 }),
                  segments_.end());
  index::CliqueIndex qi = index::CliqueIndex::Build(
      store->GetCorpus(), *correlations_, options_.engine.index);
  segments_.insert(segments_.begin(),
                   std::make_unique<Segment>(merged, std::move(*store),
                                             std::move(qi)));
  union_dirty_ = true;
  FIGDB_RETURN_IF_ERROR(MergeCrashPoint("merge: after manifest commit"));

  // Phase 3: delete the victim directories (recovery's sweep re-runs this
  // if we die here).
  std::error_code ec;
  FIGDB_RETURN_IF_ERROR(MergeCrashPoint("merge: before victim cleanup"));
  for (std::uint32_t id : victim_ids)
    std::filesystem::remove_all(SegmentDir(dir_, id), ec);
  return MergeCrashPoint("merge: after cleanup");
}

void SegmentedStore::RefreshViews(bool with_union) {
  for (auto& seg_ptr : segments_) {
    Segment& seg = *seg_ptr;
    if (!seg.dirty && seg.engine != nullptr) continue;
    index::CliqueIndex copy;
    {
      util::ScopedRole writer(seg.query_index.WriterCap());
      seg.query_index.CompactAll();
      copy = seg.query_index;  // compacted; the copy gets a fresh role
    }
    seg.engine = std::make_unique<index::FigRetrievalEngine>(
        seg.store.GetCorpus(), options_.engine, matrix_, correlations_,
        std::move(copy));
    seg.dirty = false;
  }
  if (!with_union || (!union_dirty_ && union_engine_ != nullptr)) return;
  union_engine_.reset();  // points into the old union corpus
  union_corpus_ = std::make_unique<corpus::Corpus>(UnionCorpus());
  index::CliqueIndex qi = index::CliqueIndex::Build(
      *union_corpus_, *correlations_, options_.engine.index);
  {
    util::ScopedRole writer(qi.WriterCap());
    qi.CompactAll();
  }
  union_engine_ = std::make_unique<index::FigRetrievalEngine>(
      *union_corpus_, options_.engine, matrix_, correlations_, std::move(qi));
  union_dirty_ = false;
}

StatusOr<TemporalSearchResult> SegmentedStore::Search(
    const corpus::MediaObject& query, std::size_t k, double delta,
    std::uint32_t now_epoch) {
  util::MutexLock lock(*writer_mutex_);
  if (!(delta > 0.0 && delta <= 1.0))
    return Status::InvalidArgument("decay delta " + std::to_string(delta) +
                                   " outside (0, 1]");
  if (now_epoch < clock_epoch_)
    return Status::InvalidArgument(
        "now_epoch " + std::to_string(now_epoch) + " is behind the store "
        "clock " + std::to_string(clock_epoch_) +
        " (decayed search cannot query the past)");
  RefreshViews(/*with_union=*/false);
  FIGDB_RETURN_IF_ERROR(segments_[0]->engine->ValidateQuery(query, k));
  const core::QueryModel qm = segments_[0]->engine->Scorer().Compile(
      query, options_.engine.type_mask);

  std::vector<SegmentLeg> legs;
  legs.reserve(segments_.size());
  for (auto& seg_ptr : segments_) {
    Segment& seg = *seg_ptr;
    // ref >= every epoch in the segment (local ages stay >= 0) and
    // ref <= now (the merge weight stays in (0, 1]); see decay.hpp.
    const std::uint32_t ref = std::min(seg.entry.max_epoch, now_epoch);
    std::vector<index::ScoredList> lists;
    lists.reserve(qm.cliques.size());
    for (const core::Clique& clique : qm.cliques) {
      index::ScoredList list = seg.engine->BuildCliqueList(clique);
      for (core::SearchResult& e : list.entries)
        e.score *= DecayWeightAt(delta, ref,
                                 seg.store.GetCorpus().Object(e.object).month);
      if (!list.entries.empty()) lists.push_back(std::move(list));
    }
    SegmentLeg leg;
    leg.segment_id = seg.entry.id;
    leg.weight = DecayWeightAt(delta, now_epoch, ref);
    bool truncated = false;
    leg.entries =
        options_.engine.merge == index::EngineOptions::MergeMode::kExhaustive
            ? index::ExhaustiveMerge(lists, k, nullptr, &truncated, &leg.bound)
            : index::ThresholdMerge(std::move(lists), k, nullptr, &truncated,
                                    &leg.bound);
    for (core::SearchResult& e : leg.entries)
      e.object += static_cast<corpus::ObjectId>(seg.entry.base);
    legs.push_back(std::move(leg));
  }
  return MergeSegmentTopK(std::move(legs), k);
}

StatusOr<std::vector<core::SearchResult>>
SegmentedStore::SearchExhaustiveDecayed(const corpus::MediaObject& query,
                                        std::size_t k, double delta,
                                        std::uint32_t now_epoch) {
  util::MutexLock lock(*writer_mutex_);
  if (!(delta > 0.0 && delta <= 1.0))
    return Status::InvalidArgument("decay delta " + std::to_string(delta) +
                                   " outside (0, 1]");
  if (now_epoch < clock_epoch_)
    return Status::InvalidArgument(
        "now_epoch " + std::to_string(now_epoch) + " is behind the store "
        "clock " + std::to_string(clock_epoch_) +
        " (decayed search cannot query the past)");
  RefreshViews(/*with_union=*/true);
  FIGDB_RETURN_IF_ERROR(union_engine_->ValidateQuery(query, k));
  const core::QueryModel qm =
      union_engine_->Scorer().Compile(query, options_.engine.type_mask);

  std::vector<index::ScoredList> lists;
  lists.reserve(qm.cliques.size());
  for (const core::Clique& clique : qm.cliques) {
    index::ScoredList list = union_engine_->BuildCliqueList(clique);
    for (core::SearchResult& e : list.entries)
      e.score *= DecayWeightAt(delta, now_epoch,
                               union_corpus_->Object(e.object).month);
    if (!list.entries.empty()) lists.push_back(std::move(list));
  }
  bool truncated = false;
  double bound = 0.0;
  std::vector<core::SearchResult> results =
      index::ExhaustiveMerge(lists, k, nullptr, &truncated, &bound);
  // Union positions -> global ids: live bases are contiguous (retention
  // only ever expires a prefix), so one offset covers every segment.
  const auto base0 = static_cast<corpus::ObjectId>(segments_[0]->entry.base);
  for (core::SearchResult& e : results) e.object += base0;
  SortByScoreThenId(results);
  return results;
}

corpus::Corpus SegmentedStore::UnionCorpus() const {
  corpus::Corpus u = segments_[0]->store.GetCorpus().Prefix(0);
  for (const auto& seg : segments_)
    for (corpus::ObjectId l = 0; l < seg->store.GetCorpus().Size(); ++l)
      u.Add(seg->store.GetCorpus().Object(l));
  return u;
}

std::size_t SegmentedStore::TotalObjects() const {
  std::size_t total = 0;
  for (const auto& seg : segments_) total += seg->store.GetCorpus().Size();
  return total;
}

std::size_t SegmentedStore::LiveObjects() const {
  std::size_t live = 0;
  for (const auto& seg : segments_) live += seg->store.LiveObjects();
  return live;
}

}  // namespace figdb::temporal
