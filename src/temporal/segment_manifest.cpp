#include "temporal/segment_manifest.hpp"

#include <unordered_set>

#include "util/crc32.hpp"
#include "util/serde.hpp"

namespace figdb::temporal {

using util::Status;
using util::StatusOr;

std::string SerializeSegmentManifest(const SegmentManifest& manifest) {
  util::BinaryWriter payload;
  payload.PutVarint(manifest.generation);
  payload.PutVarint(manifest.segments.size());
  for (const SegmentEntry& seg : manifest.segments) {
    payload.PutVarint(seg.id);
    payload.PutVarint(seg.min_epoch);
    payload.PutVarint(seg.max_epoch);
    payload.PutVarint(seg.base);
    payload.PutVarint(seg.count);
    payload.PutU8(static_cast<std::uint8_t>(seg.state));
  }

  util::BinaryWriter out;
  out.PutFixed32(kSegmentManifestMagic);
  out.PutFixed32(kSegmentManifestVersion);
  out.PutFixed32(util::Crc32(payload.Buffer()));
  out.PutRaw(payload.Buffer());
  return out.Take();
}

StatusOr<SegmentManifest> ParseSegmentManifest(std::string_view bytes) {
  if (bytes.size() < 12)
    return Status::DataLoss("segment manifest truncated (" +
                            std::to_string(bytes.size()) + " bytes)");
  util::BinaryReader header(bytes.substr(0, 12));
  const std::uint32_t magic = header.GetFixed32();
  const std::uint32_t version = header.GetFixed32();
  const std::uint32_t stored_crc = header.GetFixed32();
  if (magic != kSegmentManifestMagic)
    return Status::InvalidArgument("not a figdb segment manifest");
  if (version != kSegmentManifestVersion)
    return Status::InvalidArgument("unsupported segment manifest version " +
                                   std::to_string(version) + " (expected " +
                                   std::to_string(kSegmentManifestVersion) +
                                   ")");
  const std::string_view payload = bytes.substr(12);
  if (util::Crc32(payload) != stored_crc)
    return Status::DataLoss("segment manifest CRC mismatch");

  util::BinaryReader reader(payload);
  SegmentManifest manifest;
  manifest.generation = reader.GetVarint();
  const std::uint64_t num_segments = reader.GetVarint();
  if (!reader.Ok())
    return Status::DataLoss("segment manifest payload truncated");
  if (manifest.generation == 0)
    return Status::InvalidArgument("segment manifest generation must be >= 1");
  if (num_segments > kMaxSegments)
    return Status::InvalidArgument(
        "segment manifest num_segments " + std::to_string(num_segments) +
        " exceeds " + std::to_string(kMaxSegments));
  manifest.segments.reserve(static_cast<std::size_t>(num_segments));
  std::unordered_set<std::uint32_t> seen_ids;
  for (std::uint64_t i = 0; i < num_segments; ++i) {
    SegmentEntry seg;
    seg.id = static_cast<std::uint32_t>(reader.GetVarint());
    seg.min_epoch = static_cast<std::uint32_t>(reader.GetVarint());
    seg.max_epoch = static_cast<std::uint32_t>(reader.GetVarint());
    seg.base = reader.GetVarint();
    seg.count = reader.GetVarint();
    const std::uint8_t state = reader.GetU8();
    if (!reader.Ok())
      return Status::DataLoss("segment manifest payload truncated in entry " +
                              std::to_string(i));
    if (state > static_cast<std::uint8_t>(SegmentState::kTombstoned))
      return Status::InvalidArgument("unknown segment state " +
                                     std::to_string(state) + " in entry " +
                                     std::to_string(i));
    seg.state = static_cast<SegmentState>(state);
    if (seg.max_epoch < seg.min_epoch)
      return Status::InvalidArgument(
          "segment " + std::to_string(seg.id) + " epoch range [" +
          std::to_string(seg.min_epoch) + ", " + std::to_string(seg.max_epoch) +
          "] is inverted");
    if (!seen_ids.insert(seg.id).second)
      return Status::InvalidArgument("duplicate segment id " +
                                     std::to_string(seg.id));
    if (!manifest.segments.empty()) {
      const SegmentEntry& prev = manifest.segments.back();
      if (seg.base < prev.base + prev.count)
        return Status::InvalidArgument(
            "segment " + std::to_string(seg.id) + " base " +
            std::to_string(seg.base) + " overlaps the previous id range");
      if (seg.min_epoch < prev.max_epoch)
        return Status::InvalidArgument(
            "segment " + std::to_string(seg.id) + " epochs regress below " +
            "segment " + std::to_string(prev.id) + "'s max epoch");
      if (prev.state == SegmentState::kActive)
        return Status::InvalidArgument(
            "segment " + std::to_string(prev.id) +
            " is active but not the last segment");
    }
    manifest.segments.push_back(seg);
  }
  if (reader.Remaining() != 0)
    return Status::InvalidArgument(
        "segment manifest carries " + std::to_string(reader.Remaining()) +
        " trailing bytes");
  return manifest;
}

}  // namespace figdb::temporal
