#pragma once

#include <cstddef>
#include <vector>

#include "corpus/generator.hpp"
#include "temporal/burst_detector.hpp"

/// \file burst_eval.hpp
/// Precision/recall of detected burst events against the generator's
/// injected ground truth (corpus::BurstLabel).
///
/// Scoring is restricted to TEXT features: the labels name tag terms, and
/// an injected burst legitimately drags correlated user and visual
/// features up with it (the topic's favouriters spike too), so counting
/// those unlabeled-but-real detections as false positives would punish
/// the detector for being right.
///
///   precision = matched text events / detected text events
///   recall    = labels with >= 1 matching event / labels
///
/// where a text event (feature, epoch) MATCHES a label when the feature
/// is one of the label's terms and the epoch falls in its window.

namespace figdb::temporal {

struct BurstEvalResult {
  std::size_t labels = 0;           ///< labels with >= 1 surviving term
  std::size_t detected_text = 0;    ///< detected text-feature events
  std::size_t matched_events = 0;   ///< text events matching some label
  std::size_t recalled_labels = 0;  ///< labels with >= 1 matching event
  double precision = 0.0;  ///< 1.0 when nothing was detected (vacuous)
  double recall = 0.0;     ///< 1.0 when there are no labels (vacuous)
};

BurstEvalResult EvaluateBursts(const std::vector<BurstEvent>& events,
                               const std::vector<corpus::BurstLabel>& labels);

}  // namespace figdb::temporal
