#include "eval/report.hpp"

#include <algorithm>
#include <iomanip>
#include <iostream>

#include "util/check.hpp"

namespace figdb::eval {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::AddRow(std::string label, const std::vector<double>& values) {
  FIGDB_CHECK(values.size() == columns_.size());
  labels_.push_back(std::move(label));
  rows_.push_back(values);
}

void Table::Print(std::ostream& os) const {
  std::size_t label_width = 8;
  for (const std::string& l : labels_)
    label_width = std::max(label_width, l.size() + 2);

  os << "== " << title_ << " ==\n";
  os << std::left << std::setw(int(label_width)) << "method";
  for (const std::string& c : columns_)
    os << std::right << std::setw(12) << c;
  os << "\n";
  os << std::string(label_width + 12 * columns_.size(), '-') << "\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << std::left << std::setw(int(label_width)) << labels_[r];
    for (double v : rows_[r])
      os << std::right << std::setw(12) << std::fixed << std::setprecision(4)
         << v;
    os << "\n";
  }
  os << "\n";
}

void Table::PrintCsv(std::ostream& os) const {
  os << "label";
  for (const std::string& c : columns_) os << "," << c;
  os << "\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << labels_[r];
    for (double v : rows_[r])
      os << "," << std::setprecision(6) << v;
    os << "\n";
  }
}

void Table::Print() const { Print(std::cout); }

}  // namespace figdb::eval
