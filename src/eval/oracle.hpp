#pragma once

#include <unordered_set>
#include <vector>

#include "corpus/corpus.hpp"

/// \file oracle.hpp
/// Ground-truth relevance judgements.
///
/// The paper uses three human evaluators for retrieval and the "favorite"
/// list for recommendation. The synthetic corpus carries a latent dominant
/// topic per object, so the oracle substitutes the human judges: a result
/// is relevant to a query iff the two objects share their dominant topic.
/// (Recommendation keeps the paper's own protocol — held-out favourites —
/// implemented in harness.hpp.)

namespace figdb::eval {

class TopicOracle {
 public:
  explicit TopicOracle(const corpus::Corpus* corpus) : corpus_(corpus) {}

  bool Relevant(const corpus::MediaObject& query,
                corpus::ObjectId result) const {
    const auto& obj = corpus_->Object(result);
    return query.topic != corpus::MediaObject::kInvalidTopic &&
           query.topic == obj.topic;
  }

  /// All objects relevant to the query (used for RankBoost training).
  std::unordered_set<corpus::ObjectId> RelevantSet(
      const corpus::MediaObject& query) const {
    std::unordered_set<corpus::ObjectId> out;
    for (const corpus::MediaObject& obj : corpus_->Objects())
      if (obj.topic == query.topic && obj.id != query.id) out.insert(obj.id);
    return out;
  }

 private:
  const corpus::Corpus* corpus_;
};

/// Deterministic query sample (the paper's "20 randomly selected images").
std::vector<corpus::ObjectId> SampleQueries(const corpus::Corpus& corpus,
                                            std::size_t count,
                                            std::uint64_t seed);

}  // namespace figdb::eval
