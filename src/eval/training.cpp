#include "eval/training.hpp"

#include "core/lambda_trainer.hpp"
#include "eval/harness.hpp"

namespace figdb::eval {

std::vector<double> TrainEngineLambda(
    index::FigRetrievalEngine* engine,
    const std::vector<corpus::ObjectId>& training_queries,
    const TopicOracle& oracle, const LambdaTrainingOptions& options) {
  RetrievalEvalOptions eval_options;
  eval_options.cutoffs = {options.eval_k};

  core::LambdaTrainerOptions trainer_options;
  trainer_options.sweeps = options.sweeps;
  const core::LambdaTrainer trainer(trainer_options);

  const std::vector<double> initial =
      engine->Potential()->Options().lambda;
  std::vector<double> best = trainer.Train(
      initial, [&](const std::vector<double>& lambda) {
        engine->SetLambda(lambda);
        const RetrievalEvalResult r = EvaluateRetrieval(
            *engine, engine->GetCorpus(), training_queries, oracle,
            eval_options);
        return r.precision[0];
      });
  engine->SetLambda(best);
  return best;
}

std::vector<baselines::RankBoostTrainingQuery> MakeRankBoostQueries(
    const corpus::Corpus& corpus,
    const std::vector<corpus::ObjectId>& training_queries,
    const TopicOracle& oracle) {
  std::vector<baselines::RankBoostTrainingQuery> out;
  out.reserve(training_queries.size());
  for (corpus::ObjectId id : training_queries) {
    baselines::RankBoostTrainingQuery q;
    q.query = corpus.Object(id);
    q.relevant = oracle.RelevantSet(q.query);
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace figdb::eval
