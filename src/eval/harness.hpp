#pragma once

#include <functional>
#include <vector>

#include "core/retriever.hpp"
#include "corpus/generator.hpp"
#include "eval/oracle.hpp"

/// \file harness.hpp
/// Experiment drivers for the two tasks of §5: retrieval (Precision@N +
/// time per query) and recommendation (Precision@N against held-out
/// favourites).

namespace figdb::eval {

struct RetrievalEvalOptions {
  std::vector<std::size_t> cutoffs = {3, 5, 10, 20};
  /// The query object is itself a database object; drop it from results.
  bool exclude_query = true;
};

struct RetrievalEvalResult {
  /// Mean Precision@N per cutoff (same order as options.cutoffs).
  std::vector<double> precision;
  /// Mean wall-clock seconds per query (Search() only).
  double seconds_per_query = 0.0;
  std::size_t num_queries = 0;
};

/// Runs every query through \p retriever and averages Precision@N under the
/// topic oracle — the protocol behind paper Figs. 5, 7, 8, 9.
RetrievalEvalResult EvaluateRetrieval(
    const core::Retriever& retriever, const corpus::Corpus& corpus,
    const std::vector<corpus::ObjectId>& queries, const TopicOracle& oracle,
    const RetrievalEvalOptions& options = {});

struct RecommendationEvalOptions {
  std::vector<std::size_t> cutoffs = {10, 20, 30, 40, 50};
};

struct RecommendationEvalResult {
  std::vector<double> precision;
  double seconds_per_user = 0.0;
  std::size_t num_users = 0;
};

/// A recommendation method: given one user's profile history and k, return
/// the ranked candidates.
using RecommendFn = std::function<std::vector<core::SearchResult>(
    const corpus::RecommendationUser& user, std::size_t k)>;

/// The paper's recommendation protocol (§5.1.2/§5.3): a recommended object
/// counts as correct iff the user actually favourited it in the held-out
/// window.
RecommendationEvalResult EvaluateRecommendation(
    const corpus::RecommendationDataset& dataset, const RecommendFn& method,
    const RecommendationEvalOptions& options = {});

}  // namespace figdb::eval
