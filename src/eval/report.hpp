#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// \file report.hpp
/// Plain-text table printing for the benchmark harness: every bench binary
/// prints the rows/series of its paper figure through this, plus a CSV dump
/// for plotting.

namespace figdb::eval {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void AddRow(std::string label, const std::vector<double>& values);

  /// Aligned fixed-width text table.
  void Print(std::ostream& os) const;
  /// Same data as comma-separated values.
  void PrintCsv(std::ostream& os) const;
  /// Print() to stdout.
  void Print() const;

  const std::vector<std::vector<double>>& Rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::string> labels_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace figdb::eval
