#include "eval/metrics.hpp"

#include <algorithm>

namespace figdb::eval {

double PrecisionAtN(const std::vector<core::SearchResult>& results,
                    std::size_t n, const RelevanceFn& relevant) {
  if (n == 0) return 0.0;
  std::size_t hits = 0;
  const std::size_t limit = std::min(n, results.size());
  for (std::size_t i = 0; i < limit; ++i)
    if (relevant(results[i].object)) ++hits;
  return double(hits) / double(n);
}

double AveragePrecision(const std::vector<core::SearchResult>& results,
                        std::size_t total_relevant,
                        const RelevanceFn& relevant) {
  if (total_relevant == 0) return 0.0;
  double sum = 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (relevant(results[i].object)) {
      ++hits;
      sum += double(hits) / double(i + 1);
    }
  }
  return sum / double(total_relevant);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / double(values.size());
}

}  // namespace figdb::eval
