#pragma once

#include <vector>

#include "baselines/rankboost.hpp"
#include "corpus/corpus.hpp"
#include "eval/oracle.hpp"
#include "index/retrieval_engine.hpp"

/// \file training.hpp
/// Glue between the optimisers and the evaluation oracle: the paper trains
/// the MRF λ "adopting the training strategy presented in [16]" — direct
/// maximisation of the retrieval metric — and trains RankBoost from labelled
/// preferences. Both use held-out training queries disjoint from the
/// evaluation queries.

namespace figdb::eval {

struct LambdaTrainingOptions {
  std::size_t eval_k = 10;
  /// Coordinate-ascent sweeps (see core::LambdaTrainerOptions).
  std::size_t sweeps = 2;
};

/// Trains the engine's λ (by clique size) to maximise mean P@k of the
/// training queries; installs the best λ into the engine and returns it.
std::vector<double> TrainEngineLambda(
    index::FigRetrievalEngine* engine,
    const std::vector<corpus::ObjectId>& training_queries,
    const TopicOracle& oracle, const LambdaTrainingOptions& options = {});

/// Builds RankBoost training queries (relevance = shared dominant topic).
std::vector<baselines::RankBoostTrainingQuery> MakeRankBoostQueries(
    const corpus::Corpus& corpus,
    const std::vector<corpus::ObjectId>& training_queries,
    const TopicOracle& oracle);

}  // namespace figdb::eval
