#pragma once

#include <functional>
#include <vector>

#include "core/retriever.hpp"

/// \file metrics.hpp
/// Ranking quality metrics (paper §5.1.4: Precision@N for both tasks).

namespace figdb::eval {

using RelevanceFn = std::function<bool(corpus::ObjectId)>;

/// Fraction of the first \p n results that are relevant. When fewer than n
/// results exist, missing slots count as non-relevant (conservative).
double PrecisionAtN(const std::vector<core::SearchResult>& results,
                    std::size_t n, const RelevanceFn& relevant);

/// Average precision over the ranked list (relevant-total given).
double AveragePrecision(const std::vector<core::SearchResult>& results,
                        std::size_t total_relevant,
                        const RelevanceFn& relevant);

/// Mean of a vector (0 for empty input).
double Mean(const std::vector<double>& values);

}  // namespace figdb::eval
