#include "eval/oracle.hpp"

#include "util/rng.hpp"

namespace figdb::eval {

std::vector<corpus::ObjectId> SampleQueries(const corpus::Corpus& corpus,
                                            std::size_t count,
                                            std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<corpus::ObjectId> out;
  for (std::size_t idx :
       rng.SampleWithoutReplacement(corpus.Size(), count)) {
    out.push_back(static_cast<corpus::ObjectId>(idx));
  }
  return out;
}

}  // namespace figdb::eval
