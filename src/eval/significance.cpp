#include "eval/significance.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace figdb::eval {

SignificanceResult PairedBootstrap(const std::vector<double>& a,
                                   const std::vector<double>& b,
                                   std::size_t iterations,
                                   std::uint64_t seed) {
  FIGDB_CHECK(a.size() == b.size());
  FIGDB_CHECK(!a.empty());
  const std::size_t n = a.size();
  std::vector<double> diff(n);
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    diff[i] = a[i] - b[i];
    mean += diff[i];
  }
  mean /= double(n);

  util::Rng rng(seed);
  std::size_t not_positive = 0;
  for (std::size_t it = 0; it < iterations; ++it) {
    double resampled = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      resampled += diff[rng.UniformInt(n)];
    if (resampled <= 0.0) ++not_positive;
  }
  SignificanceResult out;
  out.mean_difference = mean;
  out.p_value = (double(not_positive) + 1.0) / (double(iterations) + 1.0);
  out.samples = n;
  return out;
}

double PairedTStatistic(const std::vector<double>& a,
                        const std::vector<double>& b) {
  FIGDB_CHECK(a.size() == b.size());
  FIGDB_CHECK(a.size() >= 2);
  const std::size_t n = a.size();
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += a[i] - b[i];
  mean /= double(n);
  double var = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = (a[i] - b[i]) - mean;
    var += d * d;
  }
  var /= double(n - 1);
  if (var <= 0.0) return mean == 0.0 ? 0.0 : HUGE_VAL * (mean > 0 ? 1 : -1);
  return mean / std::sqrt(var / double(n));
}

}  // namespace figdb::eval
