#include "eval/harness.hpp"

#include <algorithm>
#include <unordered_set>

#include "eval/metrics.hpp"
#include "util/stopwatch.hpp"

namespace figdb::eval {

RetrievalEvalResult EvaluateRetrieval(
    const core::Retriever& retriever, const corpus::Corpus& corpus,
    const std::vector<corpus::ObjectId>& queries, const TopicOracle& oracle,
    const RetrievalEvalOptions& options) {
  RetrievalEvalResult out;
  out.precision.assign(options.cutoffs.size(), 0.0);
  if (queries.empty()) return out;
  const std::size_t max_n =
      *std::max_element(options.cutoffs.begin(), options.cutoffs.end());

  double total_seconds = 0.0;
  for (corpus::ObjectId qid : queries) {
    const corpus::MediaObject& query = corpus.Object(qid);
    util::Stopwatch watch;
    // Ask for one extra result so dropping the query itself still leaves
    // max_n candidates.
    std::vector<core::SearchResult> results =
        retriever.Search(query, max_n + (options.exclude_query ? 1 : 0));
    total_seconds += watch.ElapsedSeconds();
    if (options.exclude_query) {
      std::erase_if(results, [qid](const core::SearchResult& r) {
        return r.object == qid;
      });
    }
    for (std::size_t c = 0; c < options.cutoffs.size(); ++c) {
      out.precision[c] += PrecisionAtN(
          results, options.cutoffs[c],
          [&](corpus::ObjectId id) { return oracle.Relevant(query, id); });
    }
  }
  for (double& p : out.precision) p /= double(queries.size());
  out.seconds_per_query = total_seconds / double(queries.size());
  out.num_queries = queries.size();
  return out;
}

RecommendationEvalResult EvaluateRecommendation(
    const corpus::RecommendationDataset& dataset, const RecommendFn& method,
    const RecommendationEvalOptions& options) {
  RecommendationEvalResult out;
  out.precision.assign(options.cutoffs.size(), 0.0);
  const std::size_t max_n =
      *std::max_element(options.cutoffs.begin(), options.cutoffs.end());

  double total_seconds = 0.0;
  std::size_t evaluated = 0;
  for (const corpus::RecommendationUser& user : dataset.users) {
    if (user.profile.empty() || user.held_out.empty()) continue;
    ++evaluated;
    const std::unordered_set<corpus::ObjectId> truth(user.held_out.begin(),
                                                     user.held_out.end());
    util::Stopwatch watch;
    const std::vector<core::SearchResult> results = method(user, max_n);
    total_seconds += watch.ElapsedSeconds();
    for (std::size_t c = 0; c < options.cutoffs.size(); ++c) {
      out.precision[c] += PrecisionAtN(
          results, options.cutoffs[c],
          [&](corpus::ObjectId id) { return truth.count(id) > 0; });
    }
  }
  if (evaluated > 0) {
    for (double& p : out.precision) p /= double(evaluated);
    out.seconds_per_user = total_seconds / double(evaluated);
  }
  out.num_users = evaluated;
  return out;
}

}  // namespace figdb::eval
