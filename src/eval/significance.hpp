#pragma once

#include <cstdint>
#include <vector>

/// \file significance.hpp
/// Statistical significance of per-query metric differences.
///
/// The paper reports mean Precision@N over 20 queries; with samples that
/// small, method orderings deserve a significance check. The bench binaries
/// can attach a paired-bootstrap p-value to "A beats B" claims.

namespace figdb::eval {

struct SignificanceResult {
  /// mean(a) - mean(b).
  double mean_difference = 0.0;
  /// One-sided p-value for the hypothesis mean(a) > mean(b).
  double p_value = 1.0;
  std::size_t samples = 0;
};

/// Paired bootstrap over per-query metric pairs: resample query indices
/// with replacement and count how often the resampled mean difference is
/// <= 0. Requires a.size() == b.size() > 0.
SignificanceResult PairedBootstrap(const std::vector<double>& a,
                                   const std::vector<double>& b,
                                   std::size_t iterations = 10000,
                                   std::uint64_t seed = 0x5e5e);

/// Paired t statistic (for reference; the bootstrap makes no normality
/// assumption). Returns the t value; p-value lookup is the caller's job.
double PairedTStatistic(const std::vector<double>& a,
                        const std::vector<double>& b);

}  // namespace figdb::eval
