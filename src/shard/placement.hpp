#pragma once

#include <cstdint>

#include "corpus/media_object.hpp"
#include "shard/manifest.hpp"

/// \file placement.hpp
/// Global-id ↔ (shard, local-id) mapping, derived from the manifest.
///
/// A sharded store assigns GLOBAL ids sequentially (exactly as an
/// unsharded corpus would); each shard's FigDbStore assigns LOCAL ids
/// sequentially within the shard. The placement makes the two coordinate
/// systems mutually derivable with arithmetic only — no mapping tables to
/// persist or rebuild:
///
///   kModulo:  shard(g)  = g mod N
///             local(g)  = g div N
///             global(s, l) = l * N + s
///
/// Because modulo placement assigns ids to a shard in increasing global
/// order, within-shard local order IS global order restricted to the
/// shard — the property that lets the router's union-merge reproduce the
/// unsharded TA merge bit for bit (tie-breaks toward smaller id agree
/// across both coordinate systems).
///
/// Removal tombstones slots in place (ids are never reused, exactly the
/// FigDbStore contract), so these equations stay valid for the life of a
/// generation; a rebalance re-derives everything under the new manifest.

namespace figdb::shard {

struct Placement {
  PlacementKind kind = PlacementKind::kModulo;
  std::uint32_t num_shards = 1;

  explicit Placement(const ShardManifest& manifest)
      : kind(manifest.placement), num_shards(manifest.num_shards) {}

  std::uint32_t ShardOf(corpus::ObjectId global) const {
    return global % num_shards;  // kModulo is the only kind today
  }
  corpus::ObjectId LocalOf(corpus::ObjectId global) const {
    return global / num_shards;
  }
  corpus::ObjectId GlobalOf(std::uint32_t shard,
                            corpus::ObjectId local) const {
    return local * num_shards + shard;
  }

  /// Objects shard \p shard holds out of \p total global ids — the
  /// consistency check recovery runs against what is actually on disk.
  std::size_t ShardSize(std::size_t total, std::uint32_t shard) const {
    return total / num_shards + (shard < total % num_shards ? 1 : 0);
  }
};

}  // namespace figdb::shard
