#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "index/figdb_store.hpp"
#include "index/retrieval_engine.hpp"
#include "shard/manifest.hpp"
#include "shard/placement.hpp"
#include "util/epoch.hpp"
#include "util/status.hpp"

/// \file sharded_store.hpp
/// Corpus partitioned across N FigDbStore shards with global statistics.
///
/// ROADMAP item 1's architectural unlock: one store cannot hold a
/// millions-of-objects corpus, so ShardedStore places each object (by
/// global id, modulo hash — pluggable via PlacementKind) on one of N
/// FigDbStore shards, each with its OWN WAL and checkpoint in its own
/// directory. Durability is therefore per shard: a crash wounds or loses
/// at most the shards it touched, and recovery replays N independent WALs.
///
/// THE INVARIANT THAT MAKES SHARDED ANSWERS EXACT: scoring depends on the
/// corpus-wide statistics (feature matrix → correlation model), and a
/// shard's local statistics differ from the union's. So the sharded store
/// pins ONE global statistics lineage — built over the union corpus in
/// global-id order at Create, re-derived from the recovered union at
/// Recover, exactly FigDbStore's pin-per-lineage rule — and every shard
/// query engine adopts it. Each shard additionally maintains a QUERY index
/// built with the global correlations (the per-shard FigDbStore's own
/// index uses local stats and exists only as part of that store's
/// self-contained durability contract). Scores are pure functions of
/// features + statistics (never object ids), so a shard-local engine
/// produces bit-identical scores to the unsharded engine for the same
/// object — the foundation of the router's bit-identity guarantee.
///
/// Reads are snapshot-isolated, the serving-layer shape: the writer
/// publishes an immutable ShardSnapshot per shard through an atomic
/// pointer and retires the previous one through an EpochReclaimer shared
/// by all shards; router legs pin an epoch before loading the pointer. A
/// straggler leg abandoned by its gather keeps its pin until the leg
/// drains, so the writer can keep publishing without freeing under it. A
/// WOUNDED shard (durability failure) refuses mutations and is skipped by
/// Publish — its last good snapshot keeps serving, which is what the
/// router's retry-then-degrade path leans on.
///
/// WRITER CONTRACT: Ingest / Remove / Checkpoint / Publish / Rebalance are
/// single-threaded (the FigDbStore contract, inherited). Readers only ever
/// touch Reclaimer() + SnapshotOf(), which are lock-free. Destroying the
/// store (or rebalancing it) while scatter legs are in flight is UB — the
/// ShardRouter joins its pool on destruction, so "router dies before
/// store" is the lifetime rule.
///
/// REBALANCE is a crash-recoverable two-phase protocol over the manifest
/// (manifest.hpp has the directory layout):
///
///   1. write rebalance.intent = target manifest   (atomic)
///   2. build EVERY new-generation shard store, fully durable
///   3. commit: atomically replace MANIFEST        (the commit point)
///   4. cleanup: delete intent, delete old generation
///
/// Recovery inverts it: MANIFEST names the only generation that exists;
/// an intent newer than MANIFEST means the crash hit before the commit
/// (delete the half-built new generation, stay old), an intent at or
/// below it means the crash hit after (delete the leftovers, stay new).
/// Either way the recovered placement is consistent — old or new, never a
/// mix. The `shard/rebalance_crash` fail-point threads numbered crash
/// sites through every step; the crash matrix in tests/shard_test.cpp
/// drives them exhaustively. Statistics are NOT rebuilt by a live
/// rebalance (same union, same lineage), so queries stay bit-identical
/// across placements.

namespace figdb::shard {

/// One immutable, epoch-managed view of one shard: a deep copy of the
/// shard corpus wrapped in a query engine that adopts the sharded store's
/// pinned GLOBAL statistics plus a fully compacted copy of the shard's
/// query index. Safe for any number of concurrent readers; never written
/// after construction.
class ShardSnapshot {
 public:
  ShardSnapshot(std::uint32_t shard, const ShardManifest& manifest,
                std::uint64_t lsn, corpus::Corpus corpus,
                const index::EngineOptions& engine_options,
                std::shared_ptr<const stats::FeatureMatrix> matrix,
                std::shared_ptr<const stats::CorrelationModel> correlations,
                index::CliqueIndex compacted_index)
      : shard_(shard),
        placement_(manifest),
        lsn_(lsn),
        corpus_(std::move(corpus)),
        engine_(std::make_unique<index::FigRetrievalEngine>(
            corpus_, engine_options, std::move(matrix),
            std::move(correlations), std::move(compacted_index))) {}

  ShardSnapshot(const ShardSnapshot&) = delete;
  ShardSnapshot& operator=(const ShardSnapshot&) = delete;

  const index::FigRetrievalEngine& Engine() const {
    FIGDB_LIFETIME_CHECK(canary_);
    return *engine_;
  }
  const corpus::Corpus& GetCorpus() const {
    FIGDB_LIFETIME_CHECK(canary_);
    return corpus_;
  }
  std::uint32_t ShardId() const { return shard_; }
  /// LSN of the last shard mutation folded into this snapshot.
  std::uint64_t Lsn() const { return lsn_; }
  /// Shard-local id → global id under the placement this snapshot serves.
  corpus::ObjectId GlobalOf(corpus::ObjectId local) const {
    FIGDB_LIFETIME_CHECK(canary_);
    return placement_.GlobalOf(shard_, local);
  }

  /// Lifetime header for EpochReclaimer::RetireObject (DESIGN.md §16).
  const util::lifetime::Canary* LifetimeCanary() const { return &canary_; }

 private:
  /// First member on purpose — see StoreSnapshot::canary_.
  util::lifetime::Canary canary_;
  std::uint32_t shard_;
  Placement placement_;
  std::uint64_t lsn_;
  /// Owned copy — the engine points into it, so corpus_ must outlive
  /// engine_ (declaration order gives reverse destruction order).
  corpus::Corpus corpus_;
  std::unique_ptr<index::FigRetrievalEngine> engine_;
};

class ShardedStore {
 public:
  struct Options {
    /// Shard fan-out at Create (Recover reads it from the manifest).
    std::uint32_t num_shards = 4;
    /// Per-shard durability substrate options.
    index::FigDbStore::Options store;
    /// Query-path options: the router's merge mode, rerank width, and the
    /// clique-index options of the per-shard QUERY indexes. Use the same
    /// EngineOptions as the unsharded baseline engine when comparing.
    index::EngineOptions engine;
  };

  /// Partitions \p base across num_shards fresh FigDbStores under \p dir
  /// and commits the generation-1 manifest. kFailedPrecondition if \p dir
  /// already holds a sharded store; leftovers of an earlier crashed Create
  /// (gen dirs without a manifest) are swept first.
  static util::StatusOr<ShardedStore> Create(const std::string& dir,
                                             const corpus::Corpus& base,
                                             Options options);
  static util::StatusOr<ShardedStore> Create(const std::string& dir,
                                             const corpus::Corpus& base) {
    return Create(dir, base, Options{});
  }

  /// Rebuilds the store from MANIFEST: resolves any interrupted rebalance
  /// (see the state machine above), recovers every shard's FigDbStore,
  /// validates shard sizes against the placement arithmetic (kDataLoss on
  /// mismatch), re-derives the global statistics from the union corpus in
  /// global-id order, and publishes fresh snapshots.
  static util::StatusOr<ShardedStore> Recover(const std::string& dir,
                                              Options options);
  static util::StatusOr<ShardedStore> Recover(const std::string& dir) {
    return Recover(dir, Options{});
  }

  ShardedStore(ShardedStore&&) = default;
  ShardedStore& operator=(ShardedStore&&) = default;
  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  // ----------------------------------------------------------------- writer
  // Single-threaded by contract.

  /// Routes the object to placement.ShardOf(next global id) and ingests it
  /// there (WAL append + apply + incremental query-index update). Returns
  /// the GLOBAL id. Global ids fill densely in placement order, so while
  /// any shard is wounded, ingests that route to it fail — recover the
  /// store rather than skipping ids (the id arithmetic admits no gaps).
  util::StatusOr<corpus::ObjectId> Ingest(corpus::MediaObject object);

  /// Tombstones the GLOBAL id on its shard. kNotFound past the end or
  /// already removed.
  util::Status Remove(corpus::ObjectId global_id);

  /// Checkpoints every shard (fold WAL into the shard checkpoint). Stops
  /// at the first failing shard; the others keep their WALs (recoverable).
  util::Status Checkpoint();

  /// Publishes a fresh snapshot for every shard with unpublished
  /// mutations. Wounded shards are SKIPPED — their last good snapshot
  /// keeps serving (the router's degrade path) — so Publish never fails
  /// the healthy shards on behalf of a wounded one.
  util::Status Publish();

  /// Re-partitions onto \p new_num_shards via the two-phase manifest
  /// protocol above. On success the store serves the new placement with
  /// the SAME pinned statistics (bit-identical answers). On any error —
  /// including injected `shard/rebalance_crash` faults — the directory is
  /// guaranteed consistent for Recover(); errors before the commit point
  /// leave the old placement live in memory, errors after it the new one.
  util::Status Rebalance(std::uint32_t new_num_shards);

  // ---------------------------------------------------------------- readers
  // Lock-free; used by ShardRouter legs under an epoch pin.

  /// Pin (EpochReclaimer::ReadGuard) BEFORE loading a snapshot pointer.
  util::EpochReclaimer& Reclaimer() const { return *ebr_; }
  /// Current snapshot of shard \p s (never null after Create/Recover).
  const ShardSnapshot* SnapshotOf(std::uint32_t s) const {
    FIGDB_PIN_ESCAPE_OK("documented reader contract: callers pin via Reclaimer() before loading");
    return shards_[s]->current.load(std::memory_order_seq_cst);
  }

  // ----------------------------------------------------------- introspection
  const ShardManifest& Manifest() const { return manifest_; }
  std::uint32_t NumShards() const { return manifest_.num_shards; }
  Placement GetPlacement() const { return Placement(manifest_); }
  const Options& GetOptions() const { return options_; }
  const std::string& Dir() const { return dir_; }
  /// Global id space size (tombstoned slots included — ids never recycle).
  std::size_t TotalObjects() const { return total_objects_; }
  std::size_t LiveObjects() const;
  bool AnyWounded() const;
  /// The live durability store of shard \p s (writer-side state: LSNs,
  /// WAL stats, wound flag). Readers use SnapshotOf().
  const index::FigDbStore& ShardStore(std::uint32_t s) const {
    return shards_[s]->store;
  }

  static std::string ManifestPath(const std::string& dir);
  static std::string IntentPath(const std::string& dir);
  static std::string GenDir(const std::string& dir, std::uint64_t gen);
  static std::string ShardDir(const std::string& dir, std::uint64_t gen,
                              std::uint32_t shard);

 private:
  /// One shard's live state. Non-movable (atomic member); held by pointer.
  struct Shard {
    Shard(index::FigDbStore s, index::CliqueIndex qi)
        : store(std::move(s)), query_index(std::move(qi)) {}
    ~Shard() {
      // The current snapshot was never retired; legs must have drained.
      delete current.exchange(nullptr, std::memory_order_seq_cst);
    }
    Shard(const Shard&) = delete;
    Shard& operator=(const Shard&) = delete;

    index::FigDbStore store;
    /// Query index over the shard corpus built with the GLOBAL
    /// correlations (the store's own index uses local stats).
    index::CliqueIndex query_index;
    /// seq_cst on both sides, mirroring ServingStore: the writer's swap
    /// must be globally ordered against reader pin-then-load.
    std::atomic<const ShardSnapshot*> current{nullptr};
    /// Mutations since the last published snapshot.
    bool dirty = false;
  };

  ShardedStore() = default;

  /// Assembles the in-memory store over recovered/created shard stores:
  /// pins global statistics from \p union_corpus, builds each shard's
  /// query index with them, publishes the first snapshots.
  static ShardedStore Open(std::string dir, ShardManifest manifest,
                           Options options,
                           std::vector<index::FigDbStore> stores,
                           const corpus::Corpus& union_corpus);

  /// The live union corpus in global-id order (rebalance input).
  corpus::Corpus UnionCorpus() const;
  /// Swaps the live shard set for \p stores under the CURRENT manifest,
  /// retiring every old snapshot through the reclaimer.
  void AdoptStores(std::vector<index::FigDbStore> stores);
  /// Captures + swaps + retires one shard's snapshot.
  void PublishShard(std::uint32_t s);

  std::string dir_;
  Options options_;
  ShardManifest manifest_;
  /// Global statistics lineage, pinned at Create/Recover and shared by
  /// every shard snapshot (never rebuilt by mutations or rebalance).
  std::shared_ptr<const stats::FeatureMatrix> matrix_;
  std::shared_ptr<const stats::CorrelationModel> correlations_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<util::EpochReclaimer> ebr_;
  std::uint64_t total_objects_ = 0;
};

}  // namespace figdb::shard
