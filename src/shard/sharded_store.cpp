#include "shard/sharded_store.hpp"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/failpoint.hpp"
#include "util/thread_annotations.hpp"

namespace figdb::shard {
namespace {

using util::Status;
using util::StatusOr;

/// Read-only whole-file slurp (the manifest is tiny). kNotFound when the
/// file does not exist, kUnavailable on a read error.
StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::string bytes;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::Unavailable("read error on " + path);
  return bytes;
}

/// One numbered crash site of the rebalance protocol. Firing simulates the
/// process dying here: the caller aborts with kUnavailable and the test
/// harness re-opens the directory through Recover().
Status RebalanceCrashPoint(const std::string& site) {
  if (FIGDB_FAILPOINT("shard/rebalance_crash"))
    return Status::Unavailable("injected rebalance crash " + site);
  return Status::Ok();
}

/// Deletes every gen-* subtree of \p dir except \p keep_generation.
/// keep_generation = 0 keeps nothing. Best-effort (recovery re-runs it).
void SweepGenerations(const std::string& dir, std::uint64_t keep_generation) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("gen-", 0) != 0) continue;
    if (keep_generation != 0 &&
        name == "gen-" + std::to_string(keep_generation))
      continue;
    std::filesystem::remove_all(entry.path(), ec);
  }
}

}  // namespace

std::string ShardedStore::ManifestPath(const std::string& dir) {
  return dir + "/MANIFEST";
}
std::string ShardedStore::IntentPath(const std::string& dir) {
  return dir + "/rebalance.intent";
}
std::string ShardedStore::GenDir(const std::string& dir, std::uint64_t gen) {
  return dir + "/gen-" + std::to_string(gen);
}
std::string ShardedStore::ShardDir(const std::string& dir, std::uint64_t gen,
                                   std::uint32_t shard) {
  return GenDir(dir, gen) + "/shard-" + std::to_string(shard);
}

StatusOr<ShardedStore> ShardedStore::Create(const std::string& dir,
                                            const corpus::Corpus& base,
                                            Options options) {
  if (options.num_shards == 0 || options.num_shards > kMaxShards)
    return Status::InvalidArgument(
        "num_shards " + std::to_string(options.num_shards) + " outside [1, " +
        std::to_string(kMaxShards) + "]");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    return Status::Unavailable("cannot create " + dir + ": " + ec.message());
  if (std::filesystem::exists(ManifestPath(dir)))
    return Status::FailedPrecondition(dir +
                                      " already holds a sharded store");
  // A crashed earlier Create may have left shard directories with no
  // manifest; without a manifest nothing was ever committed.
  SweepGenerations(dir, 0);

  ShardManifest manifest;
  manifest.generation = 1;
  manifest.num_shards = options.num_shards;
  manifest.placement = PlacementKind::kModulo;
  const Placement placement(manifest);

  std::filesystem::create_directories(GenDir(dir, manifest.generation), ec);
  if (ec)
    return Status::Unavailable("cannot create generation dir: " +
                               ec.message());
  std::vector<index::FigDbStore> stores;
  stores.reserve(manifest.num_shards);
  for (std::uint32_t s = 0; s < manifest.num_shards; ++s) {
    corpus::Corpus sc = base.Prefix(0);
    for (corpus::ObjectId g = 0; g < base.Size(); ++g)
      if (placement.ShardOf(g) == s) sc.Add(base.Object(g));
    auto store = index::FigDbStore::Create(
        ShardDir(dir, manifest.generation, s), sc, options.store);
    if (!store.ok()) return store.status();
    stores.push_back(std::move(*store));
  }

  // Commit point: the manifest names generation 1 only after every shard
  // store is fully durable.
  FIGDB_RETURN_IF_ERROR(util::AtomicWriteFile(ManifestPath(dir),
                                              SerializeShardManifest(manifest)));
  FIGDB_RETURN_IF_ERROR(util::SyncParentDirectory(ManifestPath(dir)));
  return Open(dir, manifest, std::move(options), std::move(stores), base);
}

StatusOr<ShardedStore> ShardedStore::Recover(const std::string& dir,
                                             Options options) {
  auto manifest_bytes = ReadFileBytes(ManifestPath(dir));
  if (!manifest_bytes.ok())
    return Status::NotFound("no sharded store at " + dir + " (" +
                            manifest_bytes.status().message() + ")");
  auto manifest = ParseShardManifest(*manifest_bytes);
  FIGDB_RETURN_IF_ERROR(manifest.status());

  // Resolve an interrupted rebalance. The intent is advisory — MANIFEST is
  // the only commit point — so every branch just deletes what the manifest
  // does not name. An unreadable intent gets the same treatment: whatever
  // generation it advertised was never committed.
  std::error_code ec;
  if (std::filesystem::exists(IntentPath(dir))) {
    std::filesystem::remove(IntentPath(dir), ec);
    if (ec)
      return Status::Unavailable("cannot remove stale rebalance intent: " +
                                 ec.message());
  }
  SweepGenerations(dir, manifest->generation);

  const Placement placement(*manifest);
  std::vector<index::FigDbStore> stores;
  stores.reserve(manifest->num_shards);
  std::size_t total = 0;
  for (std::uint32_t s = 0; s < manifest->num_shards; ++s) {
    auto store = index::FigDbStore::Recover(
        ShardDir(dir, manifest->generation, s), options.store);
    if (!store.ok())
      return Status{store.status().code(),
                    "shard " + std::to_string(s) + ": " +
                        std::string(store.status().message())};
    total += store->GetCorpus().Size();
    stores.push_back(std::move(*store));
  }
  // The placement arithmetic admits exactly one size per shard; anything
  // else means a shard directory from a different lineage was swapped in.
  for (std::uint32_t s = 0; s < manifest->num_shards; ++s) {
    const std::size_t want = placement.ShardSize(total, s);
    const std::size_t got = stores[s].GetCorpus().Size();
    if (got != want)
      return Status::DataLoss(
          "shard " + std::to_string(s) + " holds " + std::to_string(got) +
          " objects, placement requires " + std::to_string(want));
  }

  // Rebuild the union corpus in global-id order so the statistics lineage
  // is re-derived exactly as Create derived it (bit-identity across
  // restarts).
  corpus::Corpus union_corpus = stores.empty()
                                    ? corpus::Corpus{}
                                    : stores[0].GetCorpus().Prefix(0);
  for (corpus::ObjectId g = 0; g < total; ++g)
    union_corpus.Add(
        stores[placement.ShardOf(g)].GetCorpus().Object(placement.LocalOf(g)));
  return Open(dir, *manifest, std::move(options), std::move(stores),
              union_corpus);
}

ShardedStore ShardedStore::Open(std::string dir, ShardManifest manifest,
                                Options options,
                                std::vector<index::FigDbStore> stores,
                                const corpus::Corpus& union_corpus) {
  ShardedStore out;
  out.dir_ = std::move(dir);
  out.options_ = std::move(options);
  out.manifest_ = manifest;
  out.total_objects_ = union_corpus.Size();
  out.matrix_ = std::make_shared<const stats::FeatureMatrix>(
      stats::FeatureMatrix::Build(union_corpus));
  out.correlations_ = std::make_shared<const stats::CorrelationModel>(
      union_corpus.SharedContext(), out.matrix_,
      out.options_.engine.correlations);
  out.ebr_ = std::make_unique<util::EpochReclaimer>();
  out.AdoptStores(std::move(stores));
  return out;
}

void ShardedStore::AdoptStores(std::vector<index::FigDbStore> stores) {
  // Retire the outgoing snapshots through the reclaimer FIRST: an
  // abandoned straggler leg may still hold a pin on one of them.
  for (auto& slot : shards_) {
    const ShardSnapshot* prev =
        slot->current.exchange(nullptr, std::memory_order_seq_cst);
    if (prev != nullptr) ebr_->RetireObject(prev);
  }
  shards_.clear();
  shards_.reserve(stores.size());
  for (auto& store : stores) {
    index::CliqueIndex qi = index::CliqueIndex::Build(
        store.GetCorpus(), *correlations_, options_.engine.index);
    shards_.push_back(
        std::make_unique<Shard>(std::move(store), std::move(qi)));
  }
  for (std::uint32_t s = 0; s < shards_.size(); ++s) PublishShard(s);
}

void ShardedStore::PublishShard(std::uint32_t s) {
  Shard& shard = *shards_[s];
  index::CliqueIndex copy;
  {
    util::ScopedRole writer(shard.query_index.WriterCap());
    shard.query_index.CompactAll();
    copy = shard.query_index;  // compacted; the copy gets a fresh role
  }
  auto snap = std::make_unique<const ShardSnapshot>(
      s, manifest_, shard.store.LastLsn(), shard.store.GetCorpus(),
      options_.engine, matrix_, correlations_, std::move(copy));
  const ShardSnapshot* prev =
      shard.current.exchange(snap.release(), std::memory_order_seq_cst);
  if (prev != nullptr) ebr_->RetireObject(prev);
  shard.dirty = false;
}

StatusOr<corpus::ObjectId> ShardedStore::Ingest(corpus::MediaObject object) {
  const auto gid = static_cast<corpus::ObjectId>(total_objects_);
  const Placement placement = GetPlacement();
  Shard& shard = *shards_[placement.ShardOf(gid)];
  auto local = shard.store.Ingest(std::move(object));
  if (!local.ok()) return local.status();
  FIGDB_CHECK(*local == placement.LocalOf(gid));
  {
    util::ScopedRole writer(shard.query_index.WriterCap());
    shard.query_index.AddObject(shard.store.GetCorpus().Object(*local),
                                *correlations_);
  }
  shard.dirty = true;
  ++total_objects_;
  return gid;
}

Status ShardedStore::Remove(corpus::ObjectId global_id) {
  if (global_id >= total_objects_)
    return Status::NotFound("global id " + std::to_string(global_id) +
                            " past the end of the corpus");
  const Placement placement = GetPlacement();
  Shard& shard = *shards_[placement.ShardOf(global_id)];
  FIGDB_RETURN_IF_ERROR(shard.store.Remove(placement.LocalOf(global_id)));
  {
    util::ScopedRole writer(shard.query_index.WriterCap());
    shard.query_index.RemoveObject(placement.LocalOf(global_id));
  }
  shard.dirty = true;
  return Status::Ok();
}

Status ShardedStore::Checkpoint() {
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    Status st = shards_[s]->store.Checkpoint();
    if (!st.ok())
      return Status{st.code(), "shard " + std::to_string(s) + ": " +
                                   std::string(st.message())};
  }
  return Status::Ok();
}

Status ShardedStore::Publish() {
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    if (!shard.dirty) continue;
    if (shard.store.Wounded()) continue;  // last good snapshot keeps serving
    PublishShard(s);
  }
  // Reclaim whatever the drained readers have released.
  ebr_->TryReclaim();
  return Status::Ok();
}

corpus::Corpus ShardedStore::UnionCorpus() const {
  const Placement placement = GetPlacement();
  corpus::Corpus u = shards_.empty() ? corpus::Corpus{}
                                     : shards_[0]->store.GetCorpus().Prefix(0);
  for (corpus::ObjectId g = 0; g < total_objects_; ++g)
    u.Add(shards_[placement.ShardOf(g)]->store.GetCorpus().Object(
        placement.LocalOf(g)));
  return u;
}

Status ShardedStore::Rebalance(std::uint32_t new_num_shards) {
  if (new_num_shards == 0 || new_num_shards > kMaxShards)
    return Status::InvalidArgument(
        "num_shards " + std::to_string(new_num_shards) + " outside [1, " +
        std::to_string(kMaxShards) + "]");
  for (std::uint32_t s = 0; s < shards_.size(); ++s)
    if (shards_[s]->store.Wounded())
      return Status::FailedPrecondition(
          "shard " + std::to_string(s) +
          " is wounded; recover the store before rebalancing");

  ShardManifest next = manifest_;
  next.generation = manifest_.generation + 1;
  next.num_shards = new_num_shards;
  const Placement placement(next);

  // Phase 1: declare intent, then build the ENTIRE next generation. Until
  // the commit point below, nothing in memory changes and recovery rolls
  // every on-disk leftover back.
  FIGDB_RETURN_IF_ERROR(RebalanceCrashPoint("before writing intent"));
  FIGDB_RETURN_IF_ERROR(util::AtomicWriteFile(IntentPath(dir_),
                                              SerializeShardManifest(next)));
  FIGDB_RETURN_IF_ERROR(util::SyncParentDirectory(IntentPath(dir_)));
  FIGDB_RETURN_IF_ERROR(RebalanceCrashPoint("after writing intent"));

  const corpus::Corpus u = UnionCorpus();
  std::error_code ec;
  std::filesystem::create_directories(GenDir(dir_, next.generation), ec);
  if (ec)
    return Status::Unavailable("cannot create generation dir: " +
                               ec.message());
  std::vector<index::FigDbStore> stores;
  stores.reserve(new_num_shards);
  for (std::uint32_t s = 0; s < new_num_shards; ++s) {
    FIGDB_RETURN_IF_ERROR(RebalanceCrashPoint("before creating shard " +
                                              std::to_string(s)));
    corpus::Corpus sc = u.Prefix(0);
    for (corpus::ObjectId g = 0; g < u.Size(); ++g)
      if (placement.ShardOf(g) == s) sc.Add(u.Object(g));
    auto store = index::FigDbStore::Create(
        ShardDir(dir_, next.generation, s), sc, options_.store);
    if (!store.ok()) return store.status();
    stores.push_back(std::move(*store));
    FIGDB_RETURN_IF_ERROR(RebalanceCrashPoint("after creating shard " +
                                              std::to_string(s)));
  }

  // Phase 2: commit by atomically replacing the manifest, then swap the
  // in-memory shard set. After the rename lands the new placement is the
  // truth — every later failure leaves only sweepable leftovers.
  FIGDB_RETURN_IF_ERROR(RebalanceCrashPoint("before manifest commit"));
  FIGDB_RETURN_IF_ERROR(util::AtomicWriteFile(ManifestPath(dir_),
                                              SerializeShardManifest(next)));
  FIGDB_RETURN_IF_ERROR(util::SyncParentDirectory(ManifestPath(dir_)));
  const std::uint64_t old_generation = manifest_.generation;
  manifest_ = next;
  AdoptStores(std::move(stores));
  FIGDB_RETURN_IF_ERROR(RebalanceCrashPoint("after manifest commit"));

  FIGDB_RETURN_IF_ERROR(RebalanceCrashPoint("before intent cleanup"));
  std::filesystem::remove(IntentPath(dir_), ec);
  FIGDB_RETURN_IF_ERROR(RebalanceCrashPoint("before old generation cleanup"));
  std::filesystem::remove_all(GenDir(dir_, old_generation), ec);
  FIGDB_RETURN_IF_ERROR(RebalanceCrashPoint("after cleanup"));
  return Status::Ok();
}

std::size_t ShardedStore::LiveObjects() const {
  std::size_t live = 0;
  for (const auto& shard : shards_) live += shard->store.LiveObjects();
  return live;
}

bool ShardedStore::AnyWounded() const {
  for (const auto& shard : shards_)
    if (shard->store.Wounded()) return true;
  return false;
}

}  // namespace figdb::shard
