#include "shard/manifest.hpp"

#include "util/crc32.hpp"
#include "util/serde.hpp"

namespace figdb::shard {

using util::Status;
using util::StatusOr;

std::string SerializeShardManifest(const ShardManifest& manifest) {
  util::BinaryWriter payload;
  payload.PutVarint(manifest.generation);
  payload.PutVarint(manifest.num_shards);
  payload.PutU8(static_cast<std::uint8_t>(manifest.placement));

  util::BinaryWriter out;
  out.PutFixed32(kManifestMagic);
  out.PutFixed32(kManifestVersion);
  out.PutFixed32(util::Crc32(payload.Buffer()));
  out.PutRaw(payload.Buffer());
  return out.Take();
}

StatusOr<ShardManifest> ParseShardManifest(std::string_view bytes) {
  if (bytes.size() < 12)
    return Status::DataLoss("shard manifest truncated (" +
                            std::to_string(bytes.size()) + " bytes)");
  util::BinaryReader header(bytes.substr(0, 12));
  const std::uint32_t magic = header.GetFixed32();
  const std::uint32_t version = header.GetFixed32();
  const std::uint32_t stored_crc = header.GetFixed32();
  if (magic != kManifestMagic)
    return Status::InvalidArgument("not a figdb shard manifest");
  if (version != kManifestVersion)
    return Status::InvalidArgument("unsupported shard manifest version " +
                                   std::to_string(version) + " (expected " +
                                   std::to_string(kManifestVersion) + ")");
  const std::string_view payload = bytes.substr(12);
  if (util::Crc32(payload) != stored_crc)
    return Status::DataLoss("shard manifest CRC mismatch");

  util::BinaryReader reader(payload);
  ShardManifest manifest;
  manifest.generation = reader.GetVarint();
  manifest.num_shards = static_cast<std::uint32_t>(reader.GetVarint());
  const std::uint8_t placement = reader.GetU8();
  if (!reader.Ok())
    return Status::DataLoss("shard manifest payload truncated");
  if (reader.Remaining() != 0)
    return Status::InvalidArgument(
        "shard manifest carries " + std::to_string(reader.Remaining()) +
        " trailing bytes");
  if (manifest.generation == 0)
    return Status::InvalidArgument("shard manifest generation must be >= 1");
  if (manifest.num_shards == 0 || manifest.num_shards > kMaxShards)
    return Status::InvalidArgument(
        "shard manifest num_shards " + std::to_string(manifest.num_shards) +
        " outside [1, " + std::to_string(kMaxShards) + "]");
  if (placement != static_cast<std::uint8_t>(PlacementKind::kModulo))
    return Status::InvalidArgument("unknown shard placement kind " +
                                   std::to_string(placement));
  manifest.placement = static_cast<PlacementKind>(placement);
  return manifest;
}

}  // namespace figdb::shard
