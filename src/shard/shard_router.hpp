#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "core/retriever.hpp"
#include "corpus/media_object.hpp"
#include "shard/sharded_store.hpp"
#include "util/query_budget.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

/// \file shard_router.hpp
/// Scatter-gather top-k over a ShardedStore, with fault tolerance.
///
/// Algorithm 1 distributes cleanly: each shard runs stage 1 (per-clique
/// inverted-list candidates + TA merge) over ITS objects and returns its
/// local top-R with exact aggregate scores plus a TA stop bound — an upper
/// bound on the score of everything it withheld. Because every shard
/// engine adopts the store's GLOBAL statistics, per-object scores equal
/// the unsharded engine's; because any object in the global top-R is a
/// fortiori in its own shard's top-R, sorting the union of the per-shard
/// lists (score desc, global id asc — the TopK tie-break) and truncating
/// to R reproduces the unsharded stage-1 merge bit for bit, certified by
/// max(per-shard bounds). Stage 2 (full-model rerank) then scores the
/// merged candidates through their owning shards' snapshots in merge
/// order — the unsharded rerank's exact offer sequence.
///
/// The robustness spine (degrade before reject):
///
///   STRAGGLERS   every leg polls one util::SharedDeadline; the gather
///                waits per leg only until that deadline. A leg that has
///                not answered by then is ABANDONED — it finishes (or
///                dies) on its worker later, releasing its epoch pin when
///                the task is destroyed, and its shard goes unanswered.
///   RETRIES      a leg that fails retriably (kUnavailable: the
///                `shard/wounded` and `shard/scatter_drop` drills, or a
///                real fault) is retried with bounded exponential backoff
///                against the SAME pinned snapshot — the shard's last
///                good published state. Deadline expiry is never retried.
///   PARTIAL      when retries exhaust, the query degrades instead of
///                failing: the response carries shards_answered <
///                shards_total and is marked truncated. The results are
///                then exactly the correct top-k of the union of the
///                surviving shards' objects (the certificate only spans
///                answered shards). Only zero answered shards is an error.
///
/// Fail-points (scatter-leg sites, in leg order): `shard/slow` makes a leg
/// sleep past sub-deadlines, `shard/wounded` fails a leg before it does
/// any work, `shard/scatter_drop` loses a COMPLETED answer in transit
/// (same work, retriable loss — distinct from wounded so tests can drill
/// retry-after-work separately).
///
/// Lifetimes: the router owns the pool its legs run on, so destroying the
/// router joins every outstanding leg. Destroy the router BEFORE the store
/// it queried (the store's epoch reclaimer requires drained readers).

namespace figdb::shard {

struct RouterOptions {
  /// Scatter pool size. 0 runs every leg inline on the caller in shard
  /// order — deterministic, used by the fault-injection tests.
  std::size_t workers = 4;
  /// Retries per shard AFTER the first attempt (0 = fail fast).
  std::size_t max_retries = 2;
  /// First retry delay; doubles per attempt, capped at the max. No jitter:
  /// retries replay deterministically, and only the single gather thread
  /// sleeps (no thundering herd to spread).
  double retry_backoff_seconds = 0.001;
  double max_backoff_seconds = 0.050;
  /// Admission caps, QueryExecutor semantics: above the soft cap admitted
  /// queries shed their rerank stage; above the hard cap they are
  /// rejected. 0 = derive from workers (4x / 2x).
  std::size_t max_concurrent = 0;
  std::size_t degrade_concurrent = 0;
};

/// Counters since construction (relaxed; exact under quiescence).
struct RouterStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t degraded = 0;   ///< admitted above the soft cap (rerank shed)
  std::uint64_t completed = 0;  ///< returned OK (complete or partial)
  std::uint64_t partial = 0;    ///< completed with shards_answered < total
  std::uint64_t retries = 0;    ///< scatter legs re-dispatched
  std::uint64_t stragglers = 0; ///< scatter legs abandoned at the deadline
};

/// A scatter-gather answer. Results are globally exact when Complete();
/// otherwise they are exactly the top-k of the union of the answered
/// shards' objects — the response never silently mixes in stale or
/// partial per-shard data.
struct ShardedSearchResult {
  core::SearchResponse response;
  std::size_t shards_answered = 0;
  std::size_t shards_total = 0;
  /// Leg re-dispatches this query needed (0 on the fault-free path).
  std::uint64_t retries = 0;
  /// TA certificate: max per-shard stop bound — no object a responding
  /// shard withheld can score above it. Spans only the answered shards.
  double ta_bound = 0.0;

  /// False = PARTIAL: one or more shards never answered (straggler or
  /// exhausted retries) and their objects are absent from the results.
  bool Complete() const { return shards_answered == shards_total; }
};

class ShardRouter {
 public:
  explicit ShardRouter(RouterOptions options = {});

  /// Scatter-gather top-k. Validation and admission mirror the serving
  /// executor (kInvalidArgument / kResourceExhausted with the cap that
  /// fired); kDeadlineExceeded when the deadline expired before ANY shard
  /// answered, kUnavailable when every shard failed. Any answered shard
  /// yields OK — check Complete() for degradation.
  util::StatusOr<ShardedSearchResult> Search(
      const ShardedStore& store, const corpus::MediaObject& query,
      std::size_t k, const util::QueryBudget& budget = {}) const;

  RouterStats Stats() const;

  std::size_t MaxConcurrent() const;
  std::size_t DegradeConcurrent() const;

 private:
  RouterOptions options_;
  mutable util::ThreadPool pool_;
  mutable std::atomic<std::size_t> in_flight_{0};
  mutable std::atomic<std::uint64_t> admitted_{0};
  mutable std::atomic<std::uint64_t> rejected_{0};
  mutable std::atomic<std::uint64_t> degraded_{0};
  mutable std::atomic<std::uint64_t> completed_{0};
  mutable std::atomic<std::uint64_t> partial_{0};
  mutable std::atomic<std::uint64_t> retries_{0};
  mutable std::atomic<std::uint64_t> stragglers_{0};
};

}  // namespace figdb::shard
