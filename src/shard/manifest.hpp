#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.hpp"

/// \file manifest.hpp
/// The sharded store's placement manifest — the single source of truth for
/// which generation of shard directories is live.
///
/// A sharded store directory looks like
///
///   <dir>/MANIFEST            this file (written via util/atomic_file)
///   <dir>/rebalance.intent    present only mid-rebalance (same format)
///   <dir>/gen-<G>/shard-<i>/  one FigDbStore per shard of generation G
///
/// The manifest is tiny and changes only when the placement changes: a
/// rebalance builds the ENTIRE next generation of shard stores first, then
/// commits by atomically replacing MANIFEST (the commit point), then
/// cleans up the intent file and the old generation. Recovery therefore
/// never reasons about partially-moved objects — it reads MANIFEST, keeps
/// exactly the generation it names, and deletes every other gen-* tree
/// plus any stale intent (see sharded_store.hpp for the full state
/// machine). Either the old placement or the new one, never a mix.
///
/// Framing (all little-endian, mirroring the checkpoint format):
///   fixed32  magic      0xf19d5a8d
///   fixed32  version    1
///   fixed32  crc32      over the payload bytes
///   payload: varint generation (>= 1)
///            varint num_shards (1 .. kMaxShards)
///            u8     placement kind (PlacementKind)
/// Trailing bytes after the payload are rejected. ParseShardManifest is
/// the one untrusted-bytes entry point — the fuzz_shard_manifest target
/// and the recovery path share it.

namespace figdb::shard {

inline constexpr std::uint32_t kManifestMagic = 0xf19d5a8d;
inline constexpr std::uint32_t kManifestVersion = 1;
/// Hard ceiling on shard fan-out; placements beyond it are malformed.
inline constexpr std::uint32_t kMaxShards = 256;

/// How global object ids map to shards. Pluggable by design: kModulo is
/// the hash placement this PR ships; a topic-aware kind slots in as a new
/// enumerator + arm in placement.hpp without touching the manifest frame.
enum class PlacementKind : std::uint8_t {
  kModulo = 0,
};

struct ShardManifest {
  std::uint64_t generation = 1;
  std::uint32_t num_shards = 1;
  PlacementKind placement = PlacementKind::kModulo;

  bool operator==(const ShardManifest&) const = default;
};

std::string SerializeShardManifest(const ShardManifest& manifest);

/// Rejects with kInvalidArgument (wrong magic/version/ranges/trailing
/// bytes) or kDataLoss (CRC mismatch, truncation). Accepted manifests
/// round-trip: Parse(Serialize(m)) == m.
[[nodiscard]] util::StatusOr<ShardManifest> ParseShardManifest(
    std::string_view bytes);

}  // namespace figdb::shard
