#include "shard/shard_router.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "index/threshold_algorithm.hpp"
#include "util/admission.hpp"
#include "util/backoff.hpp"
#include "util/epoch.hpp"
#include "util/failpoint.hpp"
#include "util/shared_deadline.hpp"
#include "util/thread_annotations.hpp"
#include "util/top_k.hpp"

namespace figdb::shard {
namespace {

using util::Status;
using util::StatusCode;
using util::StatusOr;

/// The consistent per-query view: one epoch pin + snapshot pointer per
/// shard, taken pin-then-load before the first leg is dispatched. Held by
/// shared_ptr from every leg closure, so an abandoned straggler keeps the
/// pins alive until it drains — the writer can publish and retire freely
/// underneath. Retries reuse this view: "retry against the shard's last
/// good snapshot" means the snapshot the query started with.
struct PinnedView {
  std::vector<std::unique_ptr<util::EpochReclaimer::ReadGuard>> guards;
  std::vector<const ShardSnapshot*> snaps;
};

/// What one scatter leg produced. Entries carry GLOBAL ids and exact
/// aggregate stage-1 scores; `bound` is the shard's TA stop bound.
struct LegOutcome {
  Status status = Status::Ok();
  std::vector<core::SearchResult> entries;
  double bound = 0.0;
};

/// Completion mailbox between a pool leg and the gathering caller.
struct LegState {
  /// One role node for every leg mailbox: a gather must never hold two
  /// leg locks at once (the scatter-gather loop locks one leg at a time).
  util::Mutex mu{"shard.ShardRouter.leg"};
  util::CondVar cv;
  bool done FIGDB_GUARDED_BY(mu) = false;
  LegOutcome outcome FIGDB_GUARDED_BY(mu);
};

/// Stage 1 on one shard: per-clique candidate lists + local top-\p r TA
/// merge over the pinned snapshot, ids mapped to global. The three shard
/// fail-points fire here, in deterministic leg order under workers = 0.
LegOutcome RunLeg(const ShardSnapshot& snap, const core::QueryModel& qm,
                  std::size_t r, index::EngineOptions::MergeMode merge,
                  util::SharedDeadline* deadline) {
  LegOutcome out;
  if (FIGDB_FAILPOINT("shard/slow"))
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  if (FIGDB_FAILPOINT("shard/wounded")) {
    out.status = Status::Unavailable(
        "shard " + std::to_string(snap.ShardId()) + " is wounded");
    return out;
  }

  std::vector<index::ScoredList> lists;
  lists.reserve(qm.cliques.size());
  for (const core::Clique& clique : qm.cliques) {
    if (deadline->ExpiredNow()) {
      out.status = Status::DeadlineExceeded(
          "deadline expired on shard " + std::to_string(snap.ShardId()));
      return out;
    }
    index::ScoredList list = snap.Engine().BuildCliqueList(clique);
    if (!list.entries.empty()) lists.push_back(std::move(list));
  }

  bool truncated = false;
  std::vector<core::SearchResult> merged =
      merge == index::EngineOptions::MergeMode::kThresholdAlgorithm
          ? index::ThresholdMerge(std::move(lists), r, nullptr, &truncated,
                                  &out.bound)
          : index::ExhaustiveMerge(lists, r, nullptr, &truncated, &out.bound);
  for (core::SearchResult& e : merged) e.object = snap.GlobalOf(e.object);
  out.entries = std::move(merged);

  // The work is DONE; this drill loses the answer in transit, so a retry
  // redoes the work against the same snapshot and succeeds.
  if (FIGDB_FAILPOINT("shard/scatter_drop")) {
    out = LegOutcome{};
    out.status = Status::Unavailable(
        "scatter answer from shard " + std::to_string(snap.ShardId()) +
        " dropped in transit");
  }
  return out;
}

/// Blocks until the leg completes or the shared deadline passes. Returns
/// false only on expiry with the leg still outstanding — the straggler
/// case; the leg itself keeps running detached on its worker.
bool AwaitLeg(LegState& st, util::SharedDeadline& deadline) {
  util::MutexLock lock(st.mu);
  while (!st.done) {
    if (!deadline.Armed()) {
      st.cv.Wait(lock);
      continue;
    }
    if (!st.cv.WaitUntil(lock, deadline.At())) {
      if (st.done) return true;
      // Reaching At() is expiry by definition; ExpiredNow latches it for
      // every later poll (boundary tick: loop once more and re-wait).
      if (deadline.ExpiredNow()) return false;
    }
  }
  return true;
}

}  // namespace

ShardRouter::ShardRouter(RouterOptions options)
    : options_(options), pool_(options.workers) {}

std::size_t ShardRouter::MaxConcurrent() const {
  if (options_.max_concurrent != 0) return options_.max_concurrent;
  return 4 * std::max<std::size_t>(1, options_.workers);
}

std::size_t ShardRouter::DegradeConcurrent() const {
  if (options_.degrade_concurrent != 0) return options_.degrade_concurrent;
  return 2 * std::max<std::size_t>(1, options_.workers);
}

RouterStats ShardRouter::Stats() const {
  RouterStats s;
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.partial = partial_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.stragglers = stragglers_.load(std::memory_order_relaxed);
  return s;
}

StatusOr<ShardedSearchResult> ShardRouter::Search(
    const ShardedStore& store, const corpus::MediaObject& query, std::size_t k,
    const util::QueryBudget& budget) const {
  const std::uint32_t n = store.NumShards();

  // Pin the per-query view before anything else: every leg, every retry
  // and the rerank stage read these exact snapshots.
  auto view = std::make_shared<PinnedView>();
  view->guards.reserve(n);
  view->snaps.reserve(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    view->guards.push_back(std::make_unique<util::EpochReclaimer::ReadGuard>(
        store.Reclaimer()));
    view->snaps.push_back(store.SnapshotOf(s));
  }

  // Validate on any shard engine: validation depends only on the shared
  // context and statistics, which every shard's snapshot pins identically.
  FIGDB_RETURN_IF_ERROR(view->snaps[0]->Engine().ValidateQuery(query, k));

  const std::size_t count = in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  struct InFlight {
    std::atomic<std::size_t>* c;
    ~InFlight() { c->fetch_sub(1, std::memory_order_acq_rel); }
  } in_flight_release{&in_flight_};
  if (count > MaxConcurrent()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        util::AdmissionRejection("the hard concurrency cap", count - 1,
                                 MaxConcurrent(), DegradeConcurrent()));
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  const bool degrade = count > DegradeConcurrent();
  if (degrade) degraded_.fetch_add(1, std::memory_order_relaxed);

  const index::EngineOptions& eopts = store.GetOptions().engine;
  const std::size_t stage1_k = eopts.rerank_candidates == 0
                                   ? k
                                   : std::max(k, eopts.rerank_candidates);
  const auto merge_mode = eopts.merge;
  auto deadline = std::make_shared<util::SharedDeadline>(budget);
  auto qm = std::make_shared<const core::QueryModel>(
      view->snaps[0]->Engine().Scorer().Compile(query, eopts.type_mask));

  // Legs must be self-contained: an abandoned straggler may outlive this
  // call, so closures capture the view/model/deadline by shared_ptr and
  // never touch the router or the store.
  const bool inline_legs = pool_.Workers() == 0;
  auto dispatch = [&](std::uint32_t s) {
    auto st = std::make_shared<LegState>();
    auto run = [view, qm, deadline, st, s, stage1_k, merge_mode] {
      LegOutcome o =
          RunLeg(*view->snaps[s], *qm, stage1_k, merge_mode, deadline.get());
      util::MutexLock lock(st->mu);
      st->outcome = std::move(o);
      st->done = true;
      st->cv.NotifyAll();
    };
    if (inline_legs)
      run();
    else
      pool_.Submit(std::move(run));
    return st;
  };

  // Scatter attempt 0 for every shard up front (inline mode defers each
  // leg to its gather turn so fail-point hits land in shard order).
  std::vector<std::shared_ptr<LegState>> legs(n);
  if (!inline_legs)
    for (std::uint32_t s = 0; s < n; ++s) legs[s] = dispatch(s);

  ShardedSearchResult result;
  result.shards_total = n;
  std::vector<std::vector<core::SearchResult>> shard_entries(n);
  Status last_failure = Status::Ok();

  for (std::uint32_t s = 0; s < n; ++s) {
    if (inline_legs) legs[s] = dispatch(s);
    util::Backoff backoff(options_.retry_backoff_seconds,
                          options_.max_backoff_seconds);
    std::shared_ptr<LegState> leg = legs[s];
    for (std::size_t attempt = 0;; ++attempt) {
      if (!AwaitLeg(*leg, *deadline)) {
        // Straggler: abandon the shard; the leg drains detached and its
        // pins are released when the closure is destroyed.
        stragglers_.fetch_add(1, std::memory_order_relaxed);
        last_failure = Status::DeadlineExceeded(
            "shard " + std::to_string(s) + " straggled past the deadline");
        break;
      }
      LegOutcome outcome;
      {
        util::MutexLock lock(leg->mu);
        outcome = std::move(leg->outcome);
      }
      if (outcome.status.ok()) {
        shard_entries[s] = std::move(outcome.entries);
        result.ta_bound = std::max(result.ta_bound, outcome.bound);
        ++result.shards_answered;
        break;
      }
      // Only kUnavailable is retriable (transient shard fault / lost
      // answer). Deadline expiry never is — retrying it burns the other
      // shards' remaining budget.
      if (outcome.status.code() == StatusCode::kUnavailable &&
          attempt < options_.max_retries && !deadline->ExpiredNow()) {
        retries_.fetch_add(1, std::memory_order_relaxed);
        ++result.retries;
        std::this_thread::sleep_for(backoff.Next());
        leg = dispatch(s);
        continue;
      }
      last_failure = outcome.status;
      break;
    }
  }

  if (result.shards_answered == 0) {
    if (deadline->ExpiredNow())
      return Status::DeadlineExceeded(
          "deadline expired before any of " + std::to_string(n) +
          " shards answered");
    return Status{last_failure.ok() ? StatusCode::kUnavailable
                                    : last_failure.code(),
                  "all " + std::to_string(n) +
                      " shards failed; last error: " + last_failure.message()};
  }

  // Gather-merge: the union of per-shard top-R lists ordered by
  // (score desc, global id asc) truncated to R IS the stage-1 merge over
  // the answered shards' union — bit-identical to the unsharded merge
  // when every shard answered (see the file comment for the argument).
  std::vector<core::SearchResult> merged;
  for (auto& entries : shard_entries)
    merged.insert(merged.end(), entries.begin(), entries.end());
  std::sort(merged.begin(), merged.end(),
            [](const core::SearchResult& a, const core::SearchResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.object < b.object;
            });
  if (merged.size() > stage1_k) merged.resize(stage1_k);

  core::SearchResponse& resp = result.response;
  const Placement placement = store.GetPlacement();
  bool shed_rerank = eopts.rerank_candidates == 0 || degrade ||
                     deadline->ExpiredNow();
  if (!shed_rerank) {
    // Stage 2 through the owning shards' pinned snapshots, slot-indexed so
    // worker scheduling cannot perturb the output; sequential top-k offers
    // in merge order reproduce the unsharded rerank's tie-breaking.
    std::vector<double> scores(merged.size(), 0.0);
    pool_.ParallelFor(merged.size(), [&](std::size_t i) {
      if (deadline->ExpiredNow()) return;
      const corpus::ObjectId g = merged[i].object;
      const ShardSnapshot& snap = *view->snaps[placement.ShardOf(g)];
      scores[i] = snap.Engine().Scorer().Score(
          *qm, snap.GetCorpus().Object(placement.LocalOf(g)));
    });
    if (deadline->ExpiredNow()) {
      // Mid-rerank expiry: unscored slots would corrupt the ranking —
      // shed the whole stage (executor semantics).
      shed_rerank = true;
    } else {
      util::TopK<corpus::ObjectId> topk(k);
      for (std::size_t i = 0; i < merged.size(); ++i)
        topk.Offer(scores[i], merged[i].object);
      resp.results.clear();
      resp.results.reserve(topk.Size());
      for (const auto& e : topk.Take())
        resp.results.push_back({e.id, e.score});
      resp.reranked = true;
    }
  }
  if (!resp.reranked) {
    if (merged.size() > k) merged.resize(k);
    resp.results = std::move(merged);
    if (eopts.rerank_candidates != 0) resp.truncated = true;
  }
  if (!result.Complete()) {
    resp.truncated = true;  // degradation is never silent
    partial_.fetch_add(1, std::memory_order_relaxed);
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

}  // namespace figdb::shard
