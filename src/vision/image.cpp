#include "vision/image.hpp"

#include <algorithm>

namespace figdb::vision {

void Image::Clamp() {
  for (float& p : pixels_) p = std::clamp(p, 0.0f, 1.0f);
}

}  // namespace figdb::vision
