#pragma once

#include <vector>

#include "util/rng.hpp"
#include "vision/image.hpp"

/// \file image_synth.hpp
/// Procedural image synthesis conditioned on latent topics.
///
/// Substitution for the Flickr photo corpus: each latent topic owns a small
/// family of texture primitives (oriented sinusoid gratings with
/// topic-specific frequency, orientation, base brightness and contrast).
/// An image for a topic mixture is rendered block-by-block: each 16x16
/// block samples a topic from the mixture and draws that topic's texture
/// plus pixel noise. The downstream pipeline (block descriptors -> k-means
/// -> visual words) therefore sees topic-correlated but noisy visual
/// features — the "semantic gap" the paper observes for the visual
/// modality is controlled by \p pixel_noise and the per-topic texture
/// overlap.

namespace figdb::vision {

struct SynthesizerOptions {
  std::size_t image_width = 64;
  std::size_t image_height = 64;
  /// Texture primitives per topic; blocks of one topic sample among them.
  std::size_t textures_per_topic = 3;
  /// Additive Gaussian pixel noise (std dev); raises the semantic gap.
  double pixel_noise = 0.08;
  std::uint64_t seed = 7;
};

/// Renders topic-conditioned procedural images.
class Synthesizer {
 public:
  Synthesizer(std::size_t num_topics, SynthesizerOptions options);

  /// Renders an image for a topic mixture (weights over all topics, need
  /// not be normalised). \p rng drives all sampling so rendering is
  /// deterministic per call sequence.
  Image Render(const std::vector<double>& topic_weights, util::Rng* rng) const;

  std::size_t NumTopics() const { return textures_.size(); }

 private:
  struct Texture {
    double orientation;  // radians
    double frequency;    // cycles per pixel
    double base;         // base intensity
    double contrast;     // sinusoid amplitude
    double phase;
  };

  SynthesizerOptions options_;
  std::vector<std::vector<Texture>> textures_;  // [topic][primitive]
};

}  // namespace figdb::vision
