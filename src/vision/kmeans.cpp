#include "vision/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace figdb::vision {
namespace {

double DistSq(const float* a, const float* b, std::size_t dim) {
  double s = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double d = double(a[i]) - double(b[i]);
    s += d * d;
  }
  return s;
}

}  // namespace

KMeansResult KMeans(const std::vector<float>& data, std::size_t dim,
                    const KMeansOptions& options) {
  FIGDB_CHECK(dim > 0);
  FIGDB_CHECK(data.size() % dim == 0);
  const std::size_t n = data.size() / dim;
  const std::size_t k = std::min(options.k, n);
  KMeansResult result;
  if (n == 0 || k == 0) return result;

  util::Rng rng(options.seed);

  // ---- k-means++ seeding.
  std::vector<std::size_t> seeds;
  seeds.reserve(k);
  seeds.push_back(rng.UniformInt(n));
  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
  while (seeds.size() < k) {
    const float* last = data.data() + seeds.back() * dim;
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = DistSq(data.data() + i * dim, last, dim);
      if (d < min_dist[i]) min_dist[i] = d;
      total += min_dist[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with chosen seeds; fill uniformly.
      seeds.push_back(rng.UniformInt(n));
      continue;
    }
    double x = rng.UniformReal() * total;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      x -= min_dist[i];
      if (x <= 0.0) {
        chosen = i;
        break;
      }
    }
    seeds.push_back(chosen);
  }

  result.centroids.resize(k * dim);
  for (std::size_t c = 0; c < k; ++c)
    std::copy_n(data.data() + seeds[c] * dim, dim,
                result.centroids.data() + c * dim);

  // ---- Lloyd iterations.
  result.assignments.assign(n, 0);
  std::vector<double> sums(k * dim);
  std::vector<std::size_t> counts(k);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    result.inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const float* p = data.data() + i * dim;
      double best = std::numeric_limits<double>::infinity();
      std::uint32_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = DistSq(p, result.centroids.data() + c * dim, dim);
        if (d < best) {
          best = d;
          best_c = static_cast<std::uint32_t>(c);
        }
      }
      if (result.assignments[i] != best_c) {
        result.assignments[i] = best_c;
        changed = true;
      }
      result.inertia += best;
    }
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;

    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), std::size_t{0});
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t c = result.assignments[i];
      const float* p = data.data() + i * dim;
      double* s = sums.data() + std::size_t(c) * dim;
      for (std::size_t j = 0; j < dim; ++j) s[j] += p[j];
      ++counts[c];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        const std::size_t p = rng.UniformInt(n);
        std::copy_n(data.data() + p * dim, dim,
                    result.centroids.data() + c * dim);
        continue;
      }
      for (std::size_t j = 0; j < dim; ++j)
        result.centroids[c * dim + j] =
            static_cast<float>(sums[c * dim + j] / double(counts[c]));
    }
  }
  return result;
}

}  // namespace figdb::vision
