#pragma once

#include <cstddef>
#include <vector>

/// \file image.hpp
/// Minimal grayscale raster image.
///
/// The paper extracts visual words from Flickr photos; we have no photo
/// corpus, so vision::Synthesizer (image_synth.hpp) renders procedural
/// images whose texture statistics are topic-conditioned. This type is the
/// raster those images are rendered into and the input to the block feature
/// extractor — i.e. the role a cv::Mat would play.

namespace figdb::vision {

/// Row-major grayscale image with float pixels in [0, 1].
class Image {
 public:
  Image() = default;
  Image(std::size_t width, std::size_t height)
      : width_(width), height_(height), pixels_(width * height, 0.0f) {}

  std::size_t Width() const { return width_; }
  std::size_t Height() const { return height_; }

  float& At(std::size_t x, std::size_t y) { return pixels_[y * width_ + x]; }
  float At(std::size_t x, std::size_t y) const {
    return pixels_[y * width_ + x];
  }

  const std::vector<float>& Pixels() const { return pixels_; }

  /// Clamps every pixel into [0, 1].
  void Clamp();

 private:
  std::size_t width_ = 0, height_ = 0;
  std::vector<float> pixels_;
};

}  // namespace figdb::vision
