#include "vision/block_features.hpp"

#include <cmath>

#include "util/check.hpp"

namespace figdb::vision {

double DescriptorDistanceSquared(const Descriptor& a, const Descriptor& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < kDescriptorDim; ++i) {
    const double d = double(a[i]) - double(b[i]);
    s += d * d;
  }
  return s;
}

Descriptor BlockFeatureExtractor::ExtractBlock(const Image& image,
                                               std::size_t x0,
                                               std::size_t y0) const {
  FIGDB_CHECK(x0 + kBlockSize <= image.Width());
  FIGDB_CHECK(y0 + kBlockSize <= image.Height());
  Descriptor d{};

  double sum = 0.0, sum_sq = 0.0;
  double abs_dx = 0.0, abs_dy = 0.0;
  double quadrant[4] = {0.0, 0.0, 0.0, 0.0};

  for (std::size_t dy = 0; dy < kBlockSize; ++dy) {
    for (std::size_t dx = 0; dx < kBlockSize; ++dx) {
      const std::size_t x = x0 + dx, y = y0 + dy;
      const float v = image.At(x, y);
      sum += v;
      sum_sq += double(v) * double(v);
      quadrant[(dy / 8) * 2 + (dx / 8)] += v;

      // Central-difference gradients, clamped to the block interior so the
      // descriptor is a pure function of the block's pixels.
      const float vxm = image.At(dx == 0 ? x : x - 1, y);
      const float vxp = image.At(dx + 1 == kBlockSize ? x : x + 1, y);
      const float vym = image.At(x, dy == 0 ? y : y - 1);
      const float vyp = image.At(x, dy + 1 == kBlockSize ? y : y + 1);
      const double gx = 0.5 * (double(vxp) - double(vxm));
      const double gy = 0.5 * (double(vyp) - double(vym));
      abs_dx += std::fabs(gx);
      abs_dy += std::fabs(gy);

      const double mag = std::sqrt(gx * gx + gy * gy);
      if (mag > 1e-9) {
        double angle = std::atan2(gy, gx);      // [-pi, pi]
        if (angle < 0.0) angle += M_PI;          // orientation, [0, pi)
        int bin = static_cast<int>(angle / M_PI * 8.0);
        if (bin > 7) bin = 7;
        d[bin] += static_cast<float>(mag);
      }
    }
  }

  constexpr double kPixels = double(kBlockSize * kBlockSize);
  // Normalise the gradient histogram to unit L1 mass (when non-empty) so
  // the descriptor scale is comparable across blocks.
  double hist_mass = 0.0;
  for (int i = 0; i < 8; ++i) hist_mass += d[i];
  if (hist_mass > 1e-9) {
    for (int i = 0; i < 8; ++i) d[i] = static_cast<float>(d[i] / hist_mass);
  }
  for (int q = 0; q < 4; ++q)
    d[8 + q] = static_cast<float>(quadrant[q] / (kPixels / 4.0));
  const double mean = sum / kPixels;
  const double var = std::max(0.0, sum_sq / kPixels - mean * mean);
  d[12] = static_cast<float>(mean);
  d[13] = static_cast<float>(std::sqrt(var));
  d[14] = static_cast<float>(abs_dx / kPixels);
  d[15] = static_cast<float>(abs_dy / kPixels);
  return d;
}

std::vector<Descriptor> BlockFeatureExtractor::Extract(
    const Image& image) const {
  std::vector<Descriptor> out;
  if (image.Width() < kBlockSize || image.Height() < kBlockSize) return out;
  const std::size_t nx = image.Width() / kBlockSize;
  const std::size_t ny = image.Height() / kBlockSize;
  out.reserve(nx * ny);
  for (std::size_t by = 0; by < ny; ++by)
    for (std::size_t bx = 0; bx < nx; ++bx)
      out.push_back(ExtractBlock(image, bx * kBlockSize, by * kBlockSize));
  return out;
}

}  // namespace figdb::vision
