#pragma once

#include <cstdint>
#include <vector>

#include "vision/block_features.hpp"
#include "vision/kmeans.hpp"

/// \file visual_vocabulary.hpp
/// Visual-word vocabulary: k-means centroids over block descriptors.
///
/// Matches §5.1.3 of the paper: raw 16x16 block features are clustered into
/// 1022 visual words; each image is then represented by the bag of visual
/// words of its blocks. Intra-visual correlation (§3.2) is derived from the
/// Euclidean distance between word centroids.

namespace figdb::vision {

using VisualWordId = std::uint32_t;

class VisualVocabulary {
 public:
  /// Clusters \p descriptors into at most \p options.k words.
  static VisualVocabulary Build(const std::vector<Descriptor>& descriptors,
                                const KMeansOptions& options);

  /// Wraps pre-computed centroids (used by the corpus generator's fast path,
  /// which assigns each visual word a synthetic topic-anchored centroid
  /// instead of running the full image pipeline).
  static VisualVocabulary FromCentroids(std::vector<Descriptor> centroids);

  std::size_t WordCount() const { return centroids_.size(); }

  /// Nearest centroid (ties to the lower id). Vocabulary must be non-empty.
  VisualWordId Quantize(const Descriptor& d) const;

  /// Quantizes every block of an image's descriptor list.
  std::vector<VisualWordId> QuantizeAll(
      const std::vector<Descriptor>& descriptors) const;

  const Descriptor& Centroid(VisualWordId w) const;

  /// Euclidean distance between two word centroids (§3.2's intra-visual
  /// correlation signal).
  double Distance(VisualWordId a, VisualWordId b) const;

  /// Similarity in (0, 1]: 1 / (1 + distance). Monotone in -distance, so
  /// thresholding it is equivalent to thresholding distance.
  double Similarity(VisualWordId a, VisualWordId b) const;

 private:
  std::vector<Descriptor> centroids_;
};

}  // namespace figdb::vision
