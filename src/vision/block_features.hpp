#pragma once

#include <array>
#include <vector>

#include "vision/image.hpp"

/// \file block_features.hpp
/// 16-D raw block descriptors over 16x16-pixel blocks (paper §5.1.3).
///
/// The paper divides each image into uniformly distributed, equal-size
/// 16x16-pixel blocks, extracts raw visual features per block, and clusters
/// them into 1022 visual words. Our per-block descriptor is 16-D, matching
/// the paper's statement that "each visual word is a 16-D feature vector":
///   [0..7]   magnitude-weighted gradient-orientation histogram (8 bins)
///   [8..11]  mean intensity of the four 8x8 quadrants
///   [12]     block mean intensity
///   [13]     block intensity standard deviation
///   [14]     mean |dI/dx|  (horizontal texture energy)
///   [15]     mean |dI/dy|  (vertical texture energy)

namespace figdb::vision {

inline constexpr std::size_t kBlockSize = 16;
inline constexpr std::size_t kDescriptorDim = 16;

using Descriptor = std::array<float, kDescriptorDim>;

/// Squared Euclidean distance between two descriptors.
double DescriptorDistanceSquared(const Descriptor& a, const Descriptor& b);

/// Extracts one descriptor per non-overlapping 16x16 block; partial blocks
/// at the right/bottom edges are dropped, as in the paper's uniform grid.
class BlockFeatureExtractor {
 public:
  std::vector<Descriptor> Extract(const Image& image) const;

  /// Descriptor of a single block anchored at (x0, y0); the block must lie
  /// fully inside the image.
  Descriptor ExtractBlock(const Image& image, std::size_t x0,
                          std::size_t y0) const;
};

}  // namespace figdb::vision
