#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

/// \file kmeans.hpp
/// k-means clustering (k-means++ seeding + Lloyd iterations).
///
/// Used to build the 1022-word visual vocabulary from raw block features,
/// exactly the clustering step the paper takes from Wu et al. [25]. The
/// implementation is generic over the point dimensionality so tests can use
/// small synthetic problems.

namespace figdb::vision {

struct KMeansOptions {
  std::size_t k = 1022;
  std::size_t max_iterations = 25;
  /// Stop early when no assignment changes in an iteration.
  std::uint64_t seed = 42;
};

struct KMeansResult {
  /// k * dim centroid coordinates, row-major.
  std::vector<float> centroids;
  /// Cluster index per input point.
  std::vector<std::uint32_t> assignments;
  /// Final sum of squared distances to assigned centroids.
  double inertia = 0.0;
  std::size_t iterations = 0;
};

/// Clusters \p n points of dimension \p dim stored row-major in \p data.
/// If n < k, the result has exactly n singleton clusters.
KMeansResult KMeans(const std::vector<float>& data, std::size_t dim,
                    const KMeansOptions& options);

}  // namespace figdb::vision
