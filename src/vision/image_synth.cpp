#include "vision/image_synth.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace figdb::vision {

Synthesizer::Synthesizer(std::size_t num_topics, SynthesizerOptions options)
    : options_(options) {
  FIGDB_CHECK(num_topics > 0);
  util::Rng rng(options_.seed);
  textures_.resize(num_topics);
  for (std::size_t t = 0; t < num_topics; ++t) {
    textures_[t].resize(options_.textures_per_topic);
    // Topics get a home orientation/frequency band; primitives jitter
    // around it so intra-topic blocks are similar but not identical.
    const double home_orientation = rng.UniformReal(0.0, M_PI);
    const double home_frequency = rng.UniformReal(0.05, 0.45);
    const double home_base = rng.UniformReal(0.3, 0.7);
    for (auto& tex : textures_[t]) {
      tex.orientation = home_orientation + rng.Gaussian(0.0, 0.15);
      tex.frequency = std::max(0.02, home_frequency + rng.Gaussian(0.0, 0.04));
      tex.base = std::clamp(home_base + rng.Gaussian(0.0, 0.05), 0.1, 0.9);
      tex.contrast = rng.UniformReal(0.15, 0.35);
      tex.phase = rng.UniformReal(0.0, 2.0 * M_PI);
    }
  }
}

Image Synthesizer::Render(const std::vector<double>& topic_weights,
                          util::Rng* rng) const {
  FIGDB_CHECK(topic_weights.size() == textures_.size());
  Image img(options_.image_width, options_.image_height);
  const std::size_t block = 16;
  const std::size_t nx = std::max<std::size_t>(1, img.Width() / block);
  const std::size_t ny = std::max<std::size_t>(1, img.Height() / block);

  for (std::size_t by = 0; by < ny; ++by) {
    for (std::size_t bx = 0; bx < nx; ++bx) {
      const std::size_t topic = rng->Categorical(topic_weights);
      const auto& prims = textures_[topic];
      const Texture& tex = prims[rng->UniformInt(prims.size())];
      const double cos_o = std::cos(tex.orientation);
      const double sin_o = std::sin(tex.orientation);
      for (std::size_t dy = 0; dy < block; ++dy) {
        for (std::size_t dx = 0; dx < block; ++dx) {
          const std::size_t x = bx * block + dx;
          const std::size_t y = by * block + dy;
          if (x >= img.Width() || y >= img.Height()) continue;
          const double u = cos_o * double(x) + sin_o * double(y);
          double v = tex.base +
                     tex.contrast *
                         std::sin(2.0 * M_PI * tex.frequency * u + tex.phase);
          v += rng->Gaussian(0.0, options_.pixel_noise);
          img.At(x, y) = static_cast<float>(v);
        }
      }
    }
  }
  img.Clamp();
  return img;
}

}  // namespace figdb::vision
