#include "vision/visual_vocabulary.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace figdb::vision {

VisualVocabulary VisualVocabulary::Build(
    const std::vector<Descriptor>& descriptors, const KMeansOptions& options) {
  std::vector<float> flat;
  flat.reserve(descriptors.size() * kDescriptorDim);
  for (const Descriptor& d : descriptors)
    flat.insert(flat.end(), d.begin(), d.end());
  const KMeansResult km = KMeans(flat, kDescriptorDim, options);

  VisualVocabulary vocab;
  const std::size_t k = km.centroids.size() / kDescriptorDim;
  vocab.centroids_.resize(k);
  for (std::size_t c = 0; c < k; ++c)
    for (std::size_t j = 0; j < kDescriptorDim; ++j)
      vocab.centroids_[c][j] = km.centroids[c * kDescriptorDim + j];
  return vocab;
}

VisualVocabulary VisualVocabulary::FromCentroids(
    std::vector<Descriptor> centroids) {
  VisualVocabulary vocab;
  vocab.centroids_ = std::move(centroids);
  return vocab;
}

VisualWordId VisualVocabulary::Quantize(const Descriptor& d) const {
  FIGDB_CHECK(!centroids_.empty());
  double best = std::numeric_limits<double>::infinity();
  VisualWordId best_w = 0;
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    const double dist = DescriptorDistanceSquared(d, centroids_[c]);
    if (dist < best) {
      best = dist;
      best_w = static_cast<VisualWordId>(c);
    }
  }
  return best_w;
}

std::vector<VisualWordId> VisualVocabulary::QuantizeAll(
    const std::vector<Descriptor>& descriptors) const {
  std::vector<VisualWordId> out;
  out.reserve(descriptors.size());
  for (const Descriptor& d : descriptors) out.push_back(Quantize(d));
  return out;
}

const Descriptor& VisualVocabulary::Centroid(VisualWordId w) const {
  FIGDB_CHECK(w < centroids_.size());
  return centroids_[w];
}

double VisualVocabulary::Distance(VisualWordId a, VisualWordId b) const {
  return std::sqrt(DescriptorDistanceSquared(Centroid(a), Centroid(b)));
}

double VisualVocabulary::Similarity(VisualWordId a, VisualWordId b) const {
  return 1.0 / (1.0 + Distance(a, b));
}

}  // namespace figdb::vision
