#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "net/socket.hpp"
#include "net/tenant_quota.hpp"
#include "net/wire.hpp"
#include "serve/serving_store.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

/// \file fig_server.hpp
/// The network serving front-end: framed requests in, ServeResults out.
///
/// FigServer wraps a ServingStore behind the wire protocol (net/wire.hpp)
/// on loopback TCP. One accept thread hands connections to a handler pool
/// (its OWN util::ThreadPool — handler tasks block on socket IO and call
/// into the executor's ParallelFor, both of which the executor pool's
/// blocking discipline forbids for its workers); each handler runs a
/// persistent read-decode-dispatch-respond loop for its connection.
///
/// Per request, in order:
///
///   DRAIN GATE     while draining (SIGTERM) or a snapshot publish is in
///                  progress (ScopedPublishPause), requests get a typed
///                  RETRY_LATER response — never a dropped byte. Requests
///                  that passed the gate FINISH, against the snapshot they
///                  pinned, and their responses are written; graceful
///                  drain loses zero accepted in-flight requests.
///   TENANT QUOTA   per-tenant hard cap rejects (RESOURCE_EXHAUSTED via
///                  the shared admission formatter), soft cap admits with
///                  forced rerank-shed degradation.
///   DEADLINE       the client's remaining budget (microseconds on the
///                  wire; no clock crosses the machine boundary) minus
///                  server-side queue time becomes the QueryBudget wall
///                  limit — work the client stopped waiting for is work
///                  the executor refuses to start. Requests without a
///                  budget get the server's default deadline: every
///                  dispatched query is deadline-bearing.
///   DISPATCH       QueryBuilder compiles the query text against the
///                  pinned snapshot's context; QueryExecutor::Search runs
///                  it; the ServeResult (or Status) is framed back.
///
/// Fail-points (the fault matrix in tests/net_test.cpp):
///   net/accept_drop    accepted connection closed before any read
///   net/conn_reset     connection closed instead of writing the response
///   net/frame_corrupt  one response payload byte flipped (client must
///                      report DATA_LOSS, not crash or trust the frame)
///   net/slow_peer      response delayed past the poll slice (client
///                      deadline enforcement)

namespace figdb::net {

struct ServerOptions {
  /// 127.0.0.1 bind port; 0 = ephemeral (read the chosen one via Port()).
  std::uint16_t port = 0;
  /// Connection-handler pool size = max concurrently served connections.
  std::size_t handler_threads = 4;
  QuotaOptions quotas;
  /// Deadline applied to requests that carry no budget; clamped to > 0 —
  /// the server never dispatches an unbounded query.
  double default_deadline_seconds = 5.0;
  /// Idle connections are closed after this long without a byte.
  double idle_timeout_seconds = 30.0;
  /// Requests asking for more than this many results are INVALID_ARGUMENT.
  std::size_t max_k = 1000;
};

/// Monotonic counters, readable while serving.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_dropped = 0;  ///< net/accept_drop firings
  std::uint64_t requests = 0;
  std::uint64_t completed = 0;
  std::uint64_t retry_later = 0;     ///< drain/publish gate responses
  std::uint64_t tenant_rejected = 0; ///< per-tenant hard cap
  std::uint64_t tenant_degraded = 0; ///< per-tenant soft cap
  std::uint64_t decode_corrupt = 0;  ///< connections dropped on bad frames
};

class FigServer {
 public:
  /// \p store must outlive the server. The server only READS the store
  /// (Acquire/Executor); publishing stays with the owning writer thread,
  /// which brackets each Publish() with a ScopedPublishPause.
  FigServer(const serve::ServingStore* store, ServerOptions options);
  ~FigServer();

  FigServer(const FigServer&) = delete;
  FigServer& operator=(const FigServer&) = delete;

  /// Binds, listens, and starts the accept thread.
  util::Status Start();

  /// The bound port (valid after Start(); resolves an ephemeral bind).
  std::uint16_t Port() const { return listener_.Port(); }

  /// Stops admitting NEW requests (typed RETRY_LATER); in-flight requests
  /// finish and their responses are written. Connections stay open so
  /// clients get answers, not resets.
  void BeginDrain() { draining_.store(true, std::memory_order_relaxed); }
  bool Draining() const { return draining_.load(std::memory_order_relaxed); }

  /// Full shutdown: drain, stop accepting, finish in-flight responses,
  /// close every connection, join all threads. Idempotent.
  void Stop();

  ServerStats Stats() const;

  /// RAII publish window: while any pause is live, requests get
  /// RETRY_LATER. The WRITER brackets ServingStore::Publish() with this so
  /// queries never race the snapshot swap — in-flight ones already pinned
  /// their epoch and complete against it.
  class ScopedPublishPause {
   public:
    explicit ScopedPublishPause(FigServer* server) : server_(server) {
      server_->publish_pauses_.fetch_add(1, std::memory_order_acq_rel);
    }
    ~ScopedPublishPause() {
      server_->publish_pauses_.fetch_sub(1, std::memory_order_acq_rel);
    }
    ScopedPublishPause(const ScopedPublishPause&) = delete;
    ScopedPublishPause& operator=(const ScopedPublishPause&) = delete;

   private:
    FigServer* server_;
  };

 private:
  void AcceptLoop();
  void HandleConnection(Socket conn);
  ResponseFrame ProcessRequest(const RequestFrame& request,
                               Socket::Clock::time_point received_at);

  const serve::ServingStore* store_;
  ServerOptions options_;
  TenantQuotas quotas_;
  ListenSocket listener_;
  util::ThreadPool handlers_;
  std::thread accept_thread_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> closing_{false};
  std::atomic<bool> stop_accepting_{false};
  std::atomic<int> publish_pauses_{0};
  bool started_ = false;
  bool stopped_ = false;

  /// Stop() waits for every handed-off connection (running or queued).
  /// Leaf by design: AcceptLoop releases it before Submit, and connection
  /// handlers only touch it bare (no store/quota lock held).
  mutable util::Mutex conn_mu_{"net.FigServer.conn"};
  util::CondVar conn_done_;
  std::size_t active_connections_ FIGDB_GUARDED_BY(conn_mu_) = 0;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_dropped_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> retry_later_{0};
  std::atomic<std::uint64_t> tenant_rejected_{0};
  std::atomic<std::uint64_t> tenant_degraded_{0};
  std::atomic<std::uint64_t> decode_corrupt_{0};
};

}  // namespace figdb::net
