#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

/// \file wire.hpp
/// The figdb wire format: length-prefixed, CRC-framed request/response
/// messages over a byte stream.
///
/// Layout of one frame (all fixed fields little-endian, util/serde):
///
///   fixed32  magic        'F''i''G''1' — stream resync / version sentinel
///   fixed32  payload_len  validated against kMaxFramePayload BEFORE any
///                         allocation (a corrupt length must fail cleanly)
///   fixed32  payload_crc  CRC32 of the payload bytes
///   payload  serde-encoded message:
///              u8      version   (kWireVersion)
///              u8      kind      (request | response)
///              varint  request_id
///              kind-specific body (below)
///
/// The decoder is INCREMENTAL and discriminates the two failure shapes a
/// stream consumer must treat differently:
///
///   kNeedMoreBytes  the buffer holds a torn PREFIX of a valid frame — the
///                   peer may still be writing; read more (or, on EOF, the
///                   connection died mid-frame: retriable UNAVAILABLE);
///   kCorrupt        the bytes can never become a valid frame (bad magic,
///                   oversized length claim, CRC mismatch, malformed
///                   payload): terminal DATA_LOSS, close the connection —
///                   after a framing error the stream has no resync point.
///
/// The header carries the request's tenant id (admission quotas), its
/// remaining deadline budget in microseconds (propagated into QueryBudget
/// on the server — the client's clock never crosses the wire, only the
/// budget), and a request id echoed in the response.

namespace figdb::net {

inline constexpr std::uint32_t kFrameMagic = 0x31476946;  // "FiG1"
inline constexpr std::uint8_t kWireVersion = 1;
/// Frames above this payload size are corrupt by definition; bounds the
/// allocation a hostile length claim can cause.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;
inline constexpr std::size_t kFrameHeaderBytes = 12;

enum class FrameKind : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
};

/// A search request. deadline_budget_us is the client's REMAINING budget at
/// send time (0 = none: the server applies its default); max_candidates
/// 0 = unlimited.
struct RequestFrame {
  std::uint64_t request_id = 0;
  std::string tenant;
  std::uint64_t deadline_budget_us = 0;
  std::string query_text;
  std::uint64_t k = 10;
  std::uint64_t max_candidates = 0;
};

/// One scored hit on the wire.
struct WireResult {
  std::uint64_t object = 0;
  double score = 0.0;
};

/// A search response: a Status (code + message) plus the result payload.
/// retry_later marks UNAVAILABLE rejections that are explicitly transient
/// (drain, snapshot publish) — the client's retry gate keys on it.
struct ResponseFrame {
  std::uint64_t request_id = 0;
  std::uint8_t code = 0;  ///< util::StatusCode as its integer value
  bool retry_later = false;
  std::string message;
  bool truncated = false;
  bool reranked = false;
  std::uint64_t epoch = 0;
  std::vector<WireResult> results;
};

/// A decoded frame: exactly one of request/response is meaningful,
/// selected by kind.
struct Frame {
  FrameKind kind = FrameKind::kRequest;
  RequestFrame request;
  ResponseFrame response;
};

enum class DecodeResult {
  kOk,            ///< *out holds the frame, *consumed bytes were used
  kNeedMoreBytes, ///< valid prefix; append more bytes and retry
  kCorrupt,       ///< never becomes valid; close the stream
};

std::string EncodeRequestFrame(const RequestFrame& request);
std::string EncodeResponseFrame(const ResponseFrame& response);

/// Incremental decode of the first frame in \p buffer. On kOk, *consumed
/// is the total frame size (header + payload) — the caller erases that
/// prefix and may decode again (streams carry back-to-back frames).
DecodeResult DecodeFrame(std::string_view buffer, Frame* out,
                         std::size_t* consumed);

/// Maps a ResponseFrame's code byte back into the Status taxonomy;
/// unknown code bytes (future peers) map to kUnavailable, never to kOk.
util::Status StatusFromResponse(const ResponseFrame& response);

}  // namespace figdb::net
