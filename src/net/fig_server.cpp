#include "net/fig_server.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "corpus/query_builder.hpp"
#include "util/failpoint.hpp"

namespace figdb::net {
namespace {

using Clock = Socket::Clock;

/// Handler poll granularity: the longest a blocked read can delay noticing
/// closing_/drain state. Short enough that Stop() completes promptly,
/// long enough that idle polling is cheap.
constexpr std::chrono::milliseconds kPollSlice(50);
/// Bound on writing one response (loopback: generous).
constexpr std::chrono::seconds kWriteTimeout(5);
/// net/slow_peer stall — longer than the tight client deadlines the fault
/// matrix uses, far shorter than any test timeout.
constexpr std::chrono::milliseconds kSlowPeerStall(150);

}  // namespace

FigServer::FigServer(const serve::ServingStore* store, ServerOptions options)
    : store_(store),
      options_(options),
      quotas_(options.quotas),
      handlers_(std::max<std::size_t>(1, options.handler_threads)) {
  if (options_.default_deadline_seconds <= 0.0)
    options_.default_deadline_seconds = 5.0;
}

FigServer::~FigServer() { Stop(); }

util::Status FigServer::Start() {
  auto listener = ListenSocket::Listen(options_.port, /*backlog=*/64);
  FIGDB_RETURN_IF_ERROR(listener.status());
  listener_ = std::move(*listener);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return util::Status::Ok();
}

void FigServer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  draining_.store(true, std::memory_order_relaxed);
  closing_.store(true, std::memory_order_relaxed);
  stop_accepting_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  util::MutexLock lock(conn_mu_);
  while (active_connections_ > 0) conn_done_.Wait(lock);
}

ServerStats FigServer::Stats() const {
  ServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_dropped = connections_dropped_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.retry_later = retry_later_.load(std::memory_order_relaxed);
  s.tenant_rejected = tenant_rejected_.load(std::memory_order_relaxed);
  s.tenant_degraded = tenant_degraded_.load(std::memory_order_relaxed);
  s.decode_corrupt = decode_corrupt_.load(std::memory_order_relaxed);
  return s;
}

void FigServer::AcceptLoop() {
  while (!stop_accepting_.load(std::memory_order_relaxed)) {
    auto conn = listener_.Accept(Clock::now() + kPollSlice);
    if (!conn.ok()) continue;  // poll slice elapsed or transient error
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (FIGDB_FAILPOINT("net/accept_drop")) {
      // The Socket destructor closes the fd: from the client's side the
      // connection vanishes right after the handshake (listen-queue
      // overflow, conntrack reset) — a retriable torn read, not a hang.
      connections_dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    {
      util::MutexLock lock(conn_mu_);
      ++active_connections_;
    }
    // std::function must be copyable; the move-only Socket rides a
    // shared_ptr into the task.
    auto shared = std::make_shared<Socket>(std::move(*conn));
    handlers_.Submit([this, shared] {
      HandleConnection(std::move(*shared));
      util::MutexLock lock(conn_mu_);
      --active_connections_;
      conn_done_.NotifyAll();
    });
  }
}

void FigServer::HandleConnection(Socket conn) {
  std::string buffer;
  auto idle_deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             options_.idle_timeout_seconds));
  while (!closing_.load(std::memory_order_relaxed)) {
    Frame frame;
    std::size_t consumed = 0;
    const DecodeResult dr = DecodeFrame(buffer, &frame, &consumed);
    if (dr == DecodeResult::kCorrupt) {
      // No resync point after a framing error: drop the connection. The
      // client observes EOF — a fresh connection starts a clean stream.
      decode_corrupt_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (dr == DecodeResult::kNeedMoreBytes) {
      auto got = conn.RecvSome(&buffer, Clock::now() + kPollSlice);
      if (!got.ok()) {
        if (got.status().code() == util::StatusCode::kDeadlineExceeded) {
          if (Clock::now() >= idle_deadline) return;
          continue;  // poll slice elapsed; re-check closing_ and drain
        }
        return;  // reset / hard error
      }
      if (*got == 0) return;  // EOF (between frames = clean; mid-frame =
                              // the peer died; either way we are done)
      idle_deadline = Clock::now() +
                      std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(
                              options_.idle_timeout_seconds));
      continue;
    }

    const auto received_at = Clock::now();
    buffer.erase(0, consumed);
    if (frame.kind != FrameKind::kRequest) return;  // protocol violation

    ResponseFrame response = ProcessRequest(frame.request, received_at);
    std::string bytes = EncodeResponseFrame(response);
    if (FIGDB_FAILPOINT("net/slow_peer"))
      std::this_thread::sleep_for(kSlowPeerStall);
    if (FIGDB_FAILPOINT("net/conn_reset"))
      return;  // close instead of answering: client sees a torn stream
    if (FIGDB_FAILPOINT("net/frame_corrupt") &&
        bytes.size() > kFrameHeaderBytes)
      // Flip a payload byte, leaving the header intact: the frame arrives
      // whole and fails its CRC — the client must type it DATA_LOSS.
      bytes[kFrameHeaderBytes] = char(bytes[kFrameHeaderBytes] ^ 0xFF);
    if (!conn.SendAll(bytes, Clock::now() + kWriteTimeout).ok()) return;
  }
}

ResponseFrame FigServer::ProcessRequest(const RequestFrame& request,
                                        Clock::time_point received_at) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  ResponseFrame response;
  response.request_id = request.request_id;

  const auto fail = [&response](const util::Status& status,
                                bool retry_later = false) {
    response.code = std::uint8_t(int(status.code()));
    response.message = status.message();
    response.retry_later = retry_later;
  };

  // Drain / publish gate, before any capacity is consumed. retry_later
  // distinguishes "the server is fine, just not NOW" from a real outage.
  if (draining_.load(std::memory_order_relaxed)) {
    retry_later_.fetch_add(1, std::memory_order_relaxed);
    fail(util::Status::Unavailable(
             "server draining: in-flight requests are finishing, "
             "new requests must retry later"),
         /*retry_later=*/true);
    return response;
  }
  if (publish_pauses_.load(std::memory_order_acquire) > 0) {
    retry_later_.fetch_add(1, std::memory_order_relaxed);
    fail(util::Status::Unavailable(
             "snapshot publish in progress: retry later"),
         /*retry_later=*/true);
    return response;
  }

  auto ticket = quotas_.Admit(request.tenant);
  if (!ticket.ok()) {
    tenant_rejected_.fetch_add(1, std::memory_order_relaxed);
    fail(ticket.status());
    return response;
  }
  if (ticket->Degrade())
    tenant_degraded_.fetch_add(1, std::memory_order_relaxed);

  if (request.k == 0 || request.k > options_.max_k) {
    fail(util::Status::InvalidArgument(
        "k must be in [1, " + std::to_string(options_.max_k) + "], got " +
        std::to_string(request.k)));
    return response;
  }

  // Deadline propagation: the wire carries the client's REMAINING budget;
  // subtract the time the frame spent queued here, refuse work the client
  // has already given up on, and hand the executor the true remainder.
  double remaining_seconds = options_.default_deadline_seconds;
  if (request.deadline_budget_us > 0) {
    const double spent =
        std::chrono::duration<double>(Clock::now() - received_at).count();
    remaining_seconds =
        double(request.deadline_budget_us) * 1e-6 - spent;
    if (remaining_seconds <= 0.0) {
      fail(util::Status::DeadlineExceeded(
          "deadline budget exhausted before dispatch"));
      return response;
    }
  }
  util::QueryBudget budget;
  budget.wall_limit_seconds = remaining_seconds;
  if (request.max_candidates > 0)
    budget.max_scored_candidates = std::size_t(request.max_candidates);

  // Pin ONE snapshot for both query compilation and execution; the epoch
  // in the response is exactly the epoch that produced the results, and a
  // concurrent publish retires this snapshot only after the guard drops.
  auto handle = store_->Acquire();
  corpus::QueryBuilder builder(handle->Engine().GetCorpus().SharedContext());
  builder.AddText(request.query_text);
  const corpus::MediaObject query = builder.Build();

  auto result = store_->Executor().Search(handle->Engine(), query,
                                          std::size_t(request.k), budget,
                                          ticket->Degrade());
  if (!result.ok()) {
    fail(result.status());
    return response;
  }
  response.code = std::uint8_t(int(util::StatusCode::kOk));
  response.truncated = result->truncated;
  response.reranked = result->reranked;
  response.epoch = handle->Epoch();
  response.results.reserve(result->results.size());
  for (const core::SearchResult& r : result->results)
    response.results.push_back({std::uint64_t(r.object), r.score});
  completed_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

}  // namespace figdb::net
