#include "net/fig_client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/backoff.hpp"

namespace figdb::net {
namespace {

using Clock = Socket::Clock;

std::uint64_t RemainingMicros(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? std::uint64_t(left.count()) : 0;
}

}  // namespace

FigClient::FigClient(std::string host, std::uint16_t port,
                     ClientOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      jitter_rng_(options.jitter_seed) {}

util::StatusOr<ClientResult> FigClient::Query(const std::string& tenant,
                                              const std::string& query_text,
                                              std::size_t k,
                                              const util::QueryBudget& budget) {
  const double wall = budget.wall_limit_seconds > 0.0
                          ? budget.wall_limit_seconds
                          : options_.default_deadline_seconds;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(wall));

  RequestFrame request;
  request.request_id = next_request_id_++;
  request.tenant = tenant;
  request.query_text = query_text;
  request.k = k;
  if (budget.max_scored_candidates != util::QueryBudget::kUnlimitedCandidates)
    request.max_candidates = budget.max_scored_candidates;

  util::Backoff backoff(options_.backoff_initial_seconds,
                        options_.backoff_max_seconds,
                        options_.jitter_seed != 0 ? &jitter_rng_ : nullptr);
  util::Status last = util::Status::Ok();
  for (std::size_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      // Sleep the backoff delay, but never past the deadline: a retry the
      // caller will not wait for is not worth dialing.
      const auto delay = std::chrono::duration_cast<Clock::duration>(
          backoff.Next());
      if (Clock::now() + delay >= deadline) break;
      std::this_thread::sleep_for(delay);
    }
    // Each attempt carries the budget REMAINING now, not the original:
    // the server must not start work the client has stopped waiting for.
    request.deadline_budget_us = RemainingMicros(deadline);
    if (request.deadline_budget_us == 0)
      return util::Status::DeadlineExceeded(
          "query deadline expired before attempt " +
          std::to_string(attempt + 1));

    auto response = Attempt(request, deadline);
    if (response.ok()) {
      util::Status server_status = StatusFromResponse(*response);
      if (server_status.ok()) {
        ClientResult result;
        result.response = std::move(*response);
        result.attempts = attempt + 1;
        return result;
      }
      // A response that names a transient condition (RETRY_LATER drain,
      // publish window) is retriable like a torn connection; every other
      // server-side Status is the query's final answer.
      if (!response->retry_later &&
          !util::IsRetriableStatus(server_status))
        return server_status;
      last = std::move(server_status);
      continue;
    }
    if (!util::IsRetriableStatus(response.status()))
      return response.status();  // DEADLINE_EXCEEDED, DATA_LOSS: terminal
    last = response.status();
  }
  if (last.ok())
    return util::Status::DeadlineExceeded("query deadline expired");
  return util::Status::Unavailable(
      "retries exhausted (" + std::to_string(options_.max_retries + 1) +
      " attempts); last error: " + last.ToString());
}

util::StatusOr<ResponseFrame> FigClient::Attempt(
    const RequestFrame& request, Clock::time_point deadline) {
  if (!conn_.Valid()) {
    const auto connect_deadline = std::min(
        deadline,
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               options_.connect_timeout_seconds)));
    auto conn = Socket::Connect(host_, port_, connect_deadline);
    if (!conn.ok()) return conn.status();
    conn_ = std::move(*conn);
  }

  util::Status sent =
      conn_.SendAll(EncodeRequestFrame(request), deadline);
  if (!sent.ok()) {
    // A stale persistent connection (server restarted, reset) fails on
    // write; surface it retriable and re-dial on the next attempt.
    conn_.Close();
    return sent;
  }

  std::string buffer;
  for (;;) {
    Frame frame;
    std::size_t consumed = 0;
    const DecodeResult dr = DecodeFrame(buffer, &frame, &consumed);
    if (dr == DecodeResult::kOk) {
      if (frame.kind != FrameKind::kResponse ||
          frame.response.request_id != request.request_id) {
        // A frame from a different conversation means the stream is not
        // what we think it is — close and treat as corruption.
        conn_.Close();
        return util::Status::DataLoss(
            "response frame did not match the request "
            "(wrong kind or request id)");
      }
      return std::move(frame.response);
    }
    if (dr == DecodeResult::kCorrupt) {
      // The frame arrived but its bytes are wrong (bad magic, CRC
      // mismatch, malformed payload). TERMINAL: a peer that corrupts one
      // frame corrupts the next; never retry into it, never trust the
      // rest of the stream.
      conn_.Close();
      return util::Status::DataLoss(
          "corrupt response frame (framing or checksum failure)");
    }
    auto got = conn_.RecvSome(&buffer, deadline);
    if (!got.ok()) {
      conn_.Close();
      return got.status();  // timeout: DEADLINE_EXCEEDED; reset: UNAVAILABLE
    }
    if (*got == 0) {
      // EOF with a partial (or absent) frame: the connection died before
      // the answer finished — TORN, retriable.
      conn_.Close();
      return util::Status::Unavailable(
          buffer.empty() ? "connection closed before any response byte"
                         : "connection closed mid-frame (torn response)");
    }
  }
}

}  // namespace figdb::net
