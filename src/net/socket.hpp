#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.hpp"

/// \file socket.hpp
/// RAII POSIX TCP sockets with deadline-bounded IO.
///
/// The serving front-end's no-hang guarantee lives here: every blocking
/// operation (connect, accept, read, write) goes through poll() with an
/// explicit deadline, so a stalled or malicious peer produces a typed
/// DEADLINE_EXCEEDED / UNAVAILABLE status instead of a wedged thread. The
/// wrappers are deliberately minimal — loopback TCP between figdb
/// processes, not a general networking library: IPv4, blocking fds driven
/// through poll, no TLS.
///
/// Status taxonomy: timeouts are kDeadlineExceeded; connection failures,
/// resets and EOF-mid-operation are kUnavailable (retrying against a
/// recovered server may help); invalid addresses are kInvalidArgument.

namespace figdb::net {

/// A connected stream socket (client side, or an accepted server
/// connection). Move-only; closes on destruction.
class Socket {
 public:
  using Clock = std::chrono::steady_clock;

  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool Valid() const { return fd_ >= 0; }
  int Fd() const { return fd_; }
  void Close();

  /// Connects to host:port, waiting at most until \p deadline.
  static util::StatusOr<Socket> Connect(const std::string& host,
                                        std::uint16_t port,
                                        Clock::time_point deadline);

  /// Writes all of \p bytes before \p deadline.
  util::Status SendAll(std::string_view bytes, Clock::time_point deadline);

  /// Reads some bytes (appended to *buffer) before \p deadline. Returns
  /// the byte count — 0 is CLEAN EOF (peer closed; whether that is fine or
  /// a torn frame is the framing layer's call), kDeadlineExceeded on
  /// timeout, kUnavailable on reset/error.
  util::StatusOr<std::size_t> RecvSome(std::string* buffer,
                                       Clock::time_point deadline);

 private:
  int fd_ = -1;
};

/// A listening socket plus deadline-bounded Accept.
class ListenSocket {
 public:
  using Clock = std::chrono::steady_clock;

  ListenSocket() = default;
  ~ListenSocket() { Close(); }
  ListenSocket(ListenSocket&& other) noexcept : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  ListenSocket& operator=(ListenSocket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      port_ = other.port_;
      other.fd_ = -1;
    }
    return *this;
  }
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// Binds 127.0.0.1:\p port (0 = ephemeral; see Port()) and listens.
  static util::StatusOr<ListenSocket> Listen(std::uint16_t port, int backlog);

  bool Valid() const { return fd_ >= 0; }
  /// The actual bound port (resolves an ephemeral bind).
  std::uint16_t Port() const { return port_; }
  void Close();

  /// Accepts one connection, waiting at most until \p deadline
  /// (kDeadlineExceeded on timeout — the accept loop's periodic chance to
  /// observe its stop flag).
  util::StatusOr<Socket> Accept(Clock::time_point deadline);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace figdb::net
