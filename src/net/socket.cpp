#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

namespace figdb::net {
namespace {

using Clock = std::chrono::steady_clock;

std::string Errno(const char* what) {
  std::string msg(what);
  msg += ": ";
  msg += std::strerror(errno);
  return msg;
}

/// Milliseconds until \p deadline, clamped to [0, 1h] for poll(). Returns
/// 0 when the deadline already passed — poll then just samples readiness.
int MillisUntil(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return int(std::clamp<std::chrono::milliseconds::rep>(
      left.count(), 0, 3'600'000));
}

/// One poll() for \p events; kDeadlineExceeded on timeout. Loops on EINTR
/// (recomputing the remaining window) so signals cannot shorten a wait.
util::Status PollFor(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int rc = ::poll(&p, 1, MillisUntil(deadline));
    if (rc > 0) return util::Status::Ok();
    if (rc == 0) {
      if (Clock::now() >= deadline)
        return util::Status::DeadlineExceeded("socket wait deadline expired");
      continue;  // clamped window elapsed; deadline still ahead
    }
    if (errno == EINTR) continue;
    return util::Status::Unavailable(Errno("poll"));
  }
}

util::Status SetNonBlocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return util::Status::Unavailable(Errno("fcntl(F_GETFL)"));
  const int next = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) < 0)
    return util::Status::Unavailable(Errno("fcntl(F_SETFL)"));
  return util::Status::Ok();
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::StatusOr<Socket> Socket::Connect(const std::string& host,
                                       std::uint16_t port,
                                       Clock::time_point deadline) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    return util::Status::InvalidArgument("not an IPv4 address: " + host);

  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.Valid()) return util::Status::Unavailable(Errno("socket"));

  // Non-blocking connect so the handshake honors the caller's deadline;
  // the fd goes back to blocking afterwards (all IO is poll-gated anyway).
  FIGDB_RETURN_IF_ERROR(SetNonBlocking(sock.Fd(), true));
  if (::connect(sock.Fd(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    if (errno != EINPROGRESS)
      return util::Status::Unavailable(Errno("connect"));
    FIGDB_RETURN_IF_ERROR(PollFor(sock.Fd(), POLLOUT, deadline));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(sock.Fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0)
      return util::Status::Unavailable(Errno("getsockopt(SO_ERROR)"));
    if (err != 0) {
      errno = err;
      return util::Status::Unavailable(Errno("connect"));
    }
  }
  FIGDB_RETURN_IF_ERROR(SetNonBlocking(sock.Fd(), false));

  const int one = 1;
  ::setsockopt(sock.Fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

util::Status Socket::SendAll(std::string_view bytes,
                             Clock::time_point deadline) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    FIGDB_RETURN_IF_ERROR(PollFor(fd_, POLLOUT, deadline));
    // MSG_NOSIGNAL: a peer that closed mid-send must surface as EPIPE ->
    // kUnavailable, not kill the server process with SIGPIPE.
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return util::Status::Unavailable(Errno("send"));
    }
    sent += std::size_t(n);
  }
  return util::Status::Ok();
}

util::StatusOr<std::size_t> Socket::RecvSome(std::string* buffer,
                                             Clock::time_point deadline) {
  FIGDB_RETURN_IF_ERROR(PollFor(fd_, POLLIN, deadline));
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status::Unavailable(Errno("recv"));
    }
    buffer->append(chunk, std::size_t(n));
    return std::size_t(n);
  }
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::StatusOr<ListenSocket> ListenSocket::Listen(std::uint16_t port,
                                                  int backlog) {
  ListenSocket sock;
  sock.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (sock.fd_ < 0) return util::Status::Unavailable(Errno("socket"));

  const int one = 1;
  ::setsockopt(sock.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(sock.fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
    return util::Status::Unavailable(Errno("bind"));
  if (::listen(sock.fd_, backlog) < 0)
    return util::Status::Unavailable(Errno("listen"));

  socklen_t len = sizeof(addr);
  if (::getsockname(sock.fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    return util::Status::Unavailable(Errno("getsockname"));
  sock.port_ = ntohs(addr.sin_port);
  return sock;
}

util::StatusOr<Socket> ListenSocket::Accept(Clock::time_point deadline) {
  FIGDB_RETURN_IF_ERROR(PollFor(fd_, POLLIN, deadline));
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return util::Status::Unavailable(Errno("accept"));
  }
}

}  // namespace figdb::net
