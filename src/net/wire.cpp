#include "net/wire.hpp"

#include "util/crc32.hpp"
#include "util/serde.hpp"

namespace figdb::net {
namespace {

/// Result lists are bounded by the payload cap anyway; this just keeps a
/// hostile count from reserving gigabytes before the per-entry reads fail.
constexpr std::uint64_t kMaxWireResults = 1u << 16;

std::string WrapPayload(const std::string& payload) {
  util::BinaryWriter w;
  w.PutFixed32(kFrameMagic);
  w.PutFixed32(std::uint32_t(payload.size()));
  w.PutFixed32(util::Crc32(payload));
  w.PutRaw(payload);
  return w.Take();
}

bool DecodeRequestBody(util::BinaryReader* r, RequestFrame* out) {
  out->tenant = r->GetString();
  out->deadline_budget_us = r->GetVarint();
  out->query_text = r->GetString();
  out->k = r->GetVarint();
  out->max_candidates = r->GetVarint();
  return r->Ok();
}

bool DecodeResponseBody(util::BinaryReader* r, ResponseFrame* out) {
  out->code = r->GetU8();
  out->retry_later = r->GetU8() != 0;
  out->message = r->GetString();
  out->truncated = r->GetU8() != 0;
  out->reranked = r->GetU8() != 0;
  out->epoch = r->GetVarint();
  const std::uint64_t n = r->GetVarint();
  if (!r->Ok() || n > kMaxWireResults) return false;
  out->results.reserve(std::size_t(n));
  for (std::uint64_t i = 0; i < n && r->Ok(); ++i) {
    WireResult wr;
    wr.object = r->GetVarint();
    wr.score = r->GetDouble();
    out->results.push_back(wr);
  }
  return r->Ok();
}

}  // namespace

std::string EncodeRequestFrame(const RequestFrame& request) {
  util::BinaryWriter w;
  w.PutU8(kWireVersion);
  w.PutU8(std::uint8_t(FrameKind::kRequest));
  w.PutVarint(request.request_id);
  w.PutString(request.tenant);
  w.PutVarint(request.deadline_budget_us);
  w.PutString(request.query_text);
  w.PutVarint(request.k);
  w.PutVarint(request.max_candidates);
  return WrapPayload(w.Buffer());
}

std::string EncodeResponseFrame(const ResponseFrame& response) {
  util::BinaryWriter w;
  w.PutU8(kWireVersion);
  w.PutU8(std::uint8_t(FrameKind::kResponse));
  w.PutVarint(response.request_id);
  w.PutU8(response.code);
  w.PutU8(response.retry_later ? 1 : 0);
  w.PutString(response.message);
  w.PutU8(response.truncated ? 1 : 0);
  w.PutU8(response.reranked ? 1 : 0);
  w.PutVarint(response.epoch);
  w.PutVarint(response.results.size());
  for (const WireResult& r : response.results) {
    w.PutVarint(r.object);
    w.PutDouble(r.score);
  }
  return WrapPayload(w.Buffer());
}

DecodeResult DecodeFrame(std::string_view buffer, Frame* out,
                         std::size_t* consumed) {
  if (buffer.size() < kFrameHeaderBytes) {
    // A short buffer whose magic bytes already contradict the sentinel can
    // never extend into a valid frame — report corruption as soon as it is
    // knowable so a garbage-spewing peer is cut off at the first bytes.
    for (std::size_t i = 0; i < buffer.size() && i < 4; ++i)
      if (std::uint8_t(buffer[i]) != std::uint8_t(kFrameMagic >> (8 * i)))
        return DecodeResult::kCorrupt;
    return DecodeResult::kNeedMoreBytes;
  }
  util::BinaryReader header(buffer.substr(0, kFrameHeaderBytes));
  if (header.GetFixed32() != kFrameMagic) return DecodeResult::kCorrupt;
  const std::uint32_t payload_len = header.GetFixed32();
  const std::uint32_t payload_crc = header.GetFixed32();
  if (payload_len > kMaxFramePayload) return DecodeResult::kCorrupt;
  if (buffer.size() < kFrameHeaderBytes + payload_len)
    return DecodeResult::kNeedMoreBytes;

  const std::string_view payload =
      buffer.substr(kFrameHeaderBytes, payload_len);
  if (util::Crc32(payload) != payload_crc) return DecodeResult::kCorrupt;

  util::BinaryReader r(payload);
  if (r.GetU8() != kWireVersion) return DecodeResult::kCorrupt;
  const std::uint8_t kind = r.GetU8();
  if (!r.Ok()) return DecodeResult::kCorrupt;

  Frame frame;
  if (kind == std::uint8_t(FrameKind::kRequest)) {
    frame.kind = FrameKind::kRequest;
    frame.request.request_id = r.GetVarint();
    if (!DecodeRequestBody(&r, &frame.request)) return DecodeResult::kCorrupt;
  } else if (kind == std::uint8_t(FrameKind::kResponse)) {
    frame.kind = FrameKind::kResponse;
    frame.response.request_id = r.GetVarint();
    if (!DecodeResponseBody(&r, &frame.response))
      return DecodeResult::kCorrupt;
  } else {
    return DecodeResult::kCorrupt;
  }
  // Trailing payload bytes mean the length claim and the message disagree —
  // the CRC passed, so the peer MEANT to send this; still corrupt.
  if (!r.AtEnd()) return DecodeResult::kCorrupt;

  *out = std::move(frame);
  *consumed = kFrameHeaderBytes + payload_len;
  return DecodeResult::kOk;
}

util::Status StatusFromResponse(const ResponseFrame& response) {
  switch (response.code) {
    case int(util::StatusCode::kOk):
      return util::Status::Ok();
    case int(util::StatusCode::kInvalidArgument):
      return util::Status::InvalidArgument(response.message);
    case int(util::StatusCode::kNotFound):
      return util::Status::NotFound(response.message);
    case int(util::StatusCode::kDataLoss):
      return util::Status::DataLoss(response.message);
    case int(util::StatusCode::kDeadlineExceeded):
      return util::Status::DeadlineExceeded(response.message);
    case int(util::StatusCode::kResourceExhausted):
      return util::Status::ResourceExhausted(response.message);
    case int(util::StatusCode::kUnavailable):
      return util::Status::Unavailable(response.message);
    case int(util::StatusCode::kFailedPrecondition):
      return util::Status::FailedPrecondition(response.message);
    default:
      return util::Status::Unavailable(
          "response carried an unknown status code " +
          std::to_string(int(response.code)));
  }
}

}  // namespace figdb::net
