#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>

#include "util/status.hpp"
#include "util/thread_annotations.hpp"

/// \file tenant_quota.hpp
/// Per-tenant admission quotas for the network front-end.
///
/// The executor's process-wide admission control protects the MACHINE; it
/// cannot stop one tenant's burst from eating every slot below the global
/// cap and starving everyone else. TenantQuotas layers the same two-level
/// convention per tenant id from the request header:
///
///   in-flight > hard cap  ->  REJECT (RESOURCE_EXHAUSTED, message via the
///                             shared util::AdmissionRejection formatter,
///                             naming the tenant, the load, both caps);
///   in-flight > soft cap  ->  ADMIT but force-degrade: the query runs with
///                             its rerank stage shed, the same degradation
///                             the executor applies under global pressure.
///
/// Counters release by RAII (TenantTicket) on every exit path, mirroring
/// the executor's AdmissionTicket, so the load the NEXT request observes
/// is exact. Unknown tenants get the default caps — a quota system that
/// only throttles registered names is a quota system with an opt-out.

namespace figdb::net {

struct TenantQuota {
  std::size_t hard_cap = 8;  ///< above this in-flight: reject
  std::size_t soft_cap = 4;  ///< above this in-flight: admit degraded
};

struct QuotaOptions {
  TenantQuota default_quota;
  /// Per-tenant overrides (ordered map: deterministic iteration in stats).
  std::map<std::string, TenantQuota> per_tenant;
};

class TenantQuotas;

/// RAII in-flight slot for one admitted request; releases on destruction.
class TenantTicket {
 public:
  TenantTicket() = default;
  ~TenantTicket();
  TenantTicket(TenantTicket&& other) noexcept;
  TenantTicket& operator=(TenantTicket&& other) noexcept;
  TenantTicket(const TenantTicket&) = delete;
  TenantTicket& operator=(const TenantTicket&) = delete;

  /// True iff the request was admitted above the tenant's soft cap and
  /// must run with its rerank stage shed.
  bool Degrade() const { return degrade_; }

 private:
  friend class TenantQuotas;
  TenantTicket(TenantQuotas* quotas, std::string tenant, bool degrade)
      : quotas_(quotas), tenant_(std::move(tenant)), degrade_(degrade) {}

  TenantQuotas* quotas_ = nullptr;
  std::string tenant_;
  bool degrade_ = false;
};

class TenantQuotas {
 public:
  explicit TenantQuotas(QuotaOptions options) : options_(std::move(options)) {}

  /// Admission check + slot acquisition. RESOURCE_EXHAUSTED above the
  /// tenant's hard cap; otherwise the ticket holds the slot and carries
  /// the soft-cap degrade verdict.
  util::StatusOr<TenantTicket> Admit(const std::string& tenant);

  /// Current in-flight count for \p tenant (tests, stats).
  std::size_t InFlight(const std::string& tenant) const;

  const TenantQuota& QuotaFor(const std::string& tenant) const;

 private:
  friend class TenantTicket;
  void Release(const std::string& tenant);

  QuotaOptions options_;
  mutable util::Mutex mu_{"net.TenantQuotas.inflight"};
  std::unordered_map<std::string, std::size_t> in_flight_
      FIGDB_GUARDED_BY(mu_);
};

}  // namespace figdb::net
