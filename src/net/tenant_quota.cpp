#include "net/tenant_quota.hpp"

#include <utility>

#include "util/admission.hpp"

namespace figdb::net {

TenantTicket::~TenantTicket() {
  if (quotas_ != nullptr) quotas_->Release(tenant_);
}

TenantTicket::TenantTicket(TenantTicket&& other) noexcept
    : quotas_(other.quotas_),
      tenant_(std::move(other.tenant_)),
      degrade_(other.degrade_) {
  other.quotas_ = nullptr;
}

TenantTicket& TenantTicket::operator=(TenantTicket&& other) noexcept {
  if (this != &other) {
    if (quotas_ != nullptr) quotas_->Release(tenant_);
    quotas_ = other.quotas_;
    tenant_ = std::move(other.tenant_);
    degrade_ = other.degrade_;
    other.quotas_ = nullptr;
  }
  return *this;
}

const TenantQuota& TenantQuotas::QuotaFor(const std::string& tenant) const {
  const auto it = options_.per_tenant.find(tenant);
  return it != options_.per_tenant.end() ? it->second
                                         : options_.default_quota;
}

util::StatusOr<TenantTicket> TenantQuotas::Admit(const std::string& tenant) {
  const TenantQuota& quota = QuotaFor(tenant);
  std::size_t count;
  {
    util::MutexLock lock(mu_);
    std::size_t& slot = in_flight_[tenant];
    count = slot + 1;
    if (count > quota.hard_cap) {
      // Same formatter, tenant-scoped cap name: operators grep one message
      // shape across the executor, the router, and per-tenant rejections.
      return util::Status::ResourceExhausted(util::AdmissionRejection(
          util::TenantCapName(tenant), slot, quota.hard_cap,
          quota.soft_cap));
    }
    slot = count;
  }
  return TenantTicket(this, tenant, count > quota.soft_cap);
}

std::size_t TenantQuotas::InFlight(const std::string& tenant) const {
  util::MutexLock lock(mu_);
  const auto it = in_flight_.find(tenant);
  return it != in_flight_.end() ? it->second : 0;
}

void TenantQuotas::Release(const std::string& tenant) {
  util::MutexLock lock(mu_);
  const auto it = in_flight_.find(tenant);
  if (it != in_flight_.end() && it->second > 0) --it->second;
}

}  // namespace figdb::net
