#pragma once

#include <cstdint>
#include <string>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "util/query_budget.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

/// \file fig_client.hpp
/// The client half of the wire protocol: one query in, a typed answer out
/// — ALWAYS a typed answer. The client's contract mirrors the fault
/// matrix's acceptance bar:
///
///   never a crash   malformed response bytes (CRC mismatch, bad framing)
///                   close the connection and return DATA_LOSS;
///   never a hang    every socket operation is bounded by the query's
///                   deadline (QueryBudget wall limit), so a stalled or
///                   black-holed server yields DEADLINE_EXCEEDED, not a
///                   stuck caller;
///   torn != corrupt EOF mid-frame means the connection died under us —
///                   retriable UNAVAILABLE (the request may never have
///                   been processed... or may have been: retrieval is
///                   idempotent, so replay is safe). A frame that is
///                   PRESENT but WRONG is DATA_LOSS: terminal, because a
///                   peer that corrupts bytes will corrupt the retry too.
///
/// Retries: bounded by max_retries and by the deadline, whichever ends
/// first, with util::Backoff delays between attempts. Retriable =
/// util::IsRetriableStatus (UNAVAILABLE only) — which the server's
/// RETRY_LATER drain/publish responses map to, so a client riding through
/// a snapshot publish just waits one backoff step and asks again. Each
/// attempt reconnects if needed and sends the REMAINING budget, so a
/// retry after a 40 ms backoff offers the server 40 ms less work.
///
/// Jitter: a fleet of clients kicked loose by the same drain would retry
/// in lockstep; an explicit jitter seed decorrelates them (equal-jitter
/// via util::JitteredBackoffDelay) while keeping every schedule
/// reproducible from its seed. Seed 0 = deterministic delays.

namespace figdb::net {

struct ClientOptions {
  double connect_timeout_seconds = 2.0;
  /// Applied when the query budget carries no deadline: the client never
  /// waits unboundedly on a socket.
  double default_deadline_seconds = 5.0;
  std::size_t max_retries = 3;
  double backoff_initial_seconds = 0.02;
  double backoff_max_seconds = 0.25;
  /// 0 = no jitter (bit-reproducible retry schedule); nonzero seeds the
  /// client's private Rng for equal-jittered backoff delays.
  std::uint64_t jitter_seed = 0;
};

/// A completed query: the decoded response plus retry accounting.
struct ClientResult {
  ResponseFrame response;
  std::size_t attempts = 1;  ///< total attempts (1 = no retries)
};

class FigClient {
 public:
  FigClient(std::string host, std::uint16_t port, ClientOptions options = {});

  /// Sends one search request and waits for its typed outcome. The
  /// connection persists across calls; torn connections are re-dialed on
  /// the next attempt. \p budget's wall limit bounds the WHOLE call —
  /// connects, sends, reads, backoff sleeps and retries included.
  util::StatusOr<ClientResult> Query(const std::string& tenant,
                                     const std::string& query_text,
                                     std::size_t k,
                                     const util::QueryBudget& budget = {});

  /// Drops the persistent connection (next Query re-dials).
  void Disconnect() { conn_.Close(); }

 private:
  util::StatusOr<ResponseFrame> Attempt(const RequestFrame& request,
                                        Socket::Clock::time_point deadline);

  std::string host_;
  std::uint16_t port_;
  ClientOptions options_;
  util::Rng jitter_rng_;
  Socket conn_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace figdb::net
