#include "serve/snapshot.hpp"

namespace figdb::serve {

std::unique_ptr<const StoreSnapshot> StoreSnapshot::Capture(
    const index::FigDbStore& store, std::uint64_t epoch) {
  // figdb-lint: allow(raw-new): make_unique cannot reach the private ctor
  auto snap = std::unique_ptr<StoreSnapshot>(new StoreSnapshot());
  snap->epoch_ = epoch;
  snap->lsn_ = store.LastLsn();
  snap->live_objects_ = store.LiveObjects();
  snap->corpus_ = store.GetCorpus();

  // Eager compaction at publish time: the snapshot's index must satisfy
  // FullyCompacted() so concurrent Lookups never write through the lazy
  // tombstone path (the serving half of the single-writer contract in
  // inverted_index.hpp).
  // The copy is function-local (copies carry a fresh, unclaimed writer
  // role): this thread is trivially its single writer until it is frozen
  // into the engine below.
  index::CliqueIndex idx = store.Index();
  util::ScopedRole writer(idx.WriterCap());
  idx.CompactAll();

  index::EngineOptions options;
  options.index = store.GetOptions().index;
  options.correlations = store.GetOptions().correlations;
  snap->engine_ = std::make_unique<index::FigRetrievalEngine>(
      snap->corpus_, options, store.Matrix(), store.Correlations(),
      std::move(idx));
  return snap;
}

}  // namespace figdb::serve
