#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "corpus/media_object.hpp"
#include "index/figdb_store.hpp"
#include "serve/query_executor.hpp"
#include "serve/snapshot.hpp"
#include "util/epoch.hpp"
#include "util/query_budget.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"

/// \file serving_store.hpp
/// Snapshot-isolated concurrent serving over a live FigDbStore.
///
/// ServingStore splits the store's roles across threads:
///
///   ONE WRITER thread mutates the live store (Ingest / Remove /
///   Checkpoint) and periodically PUBLISHes: it eagerly compacts the live
///   index, captures an immutable StoreSnapshot stamped with the next
///   epoch, swaps it into the serving pointer, and retires the previous
///   snapshot through an EpochReclaimer — the old epoch is freed only when
///   the last reader pinning it drains, so readers never block the writer
///   and the writer never frees under a reader.
///
///   ANY NUMBER of reader threads call Search(): pin the current epoch
///   (lock-free ReadGuard), load the snapshot pointer, and run the parallel
///   Algorithm 1 executor against it. Every result a reader returns is
///   computed entirely against ONE published epoch — never a hybrid of two
///   store states — and carries that epoch + LSN so callers can reason
///   about staleness.
///
/// Mutations taken between publishes are invisible to readers until the
/// next Publish() — snapshot isolation with writer-chosen visibility
/// points, the classic read-copy-update shape. The writer API is strictly
/// single-threaded (the store's own single-writer contract); the reader API
/// is thread-safe and lock-free on the pin path.
///
/// The single-writer contract is a machine-checked capability, not prose:
/// every writer entry point serializes on writer_mutex_, all writer-only
/// state is FIGDB_GUARDED_BY it, and the internal publish path REQUIRES it
/// — under the FIGDB_THREAD_SAFETY build a refactor that reaches writer
/// state without the capability fails to compile, and at runtime the
/// (uncontended-in-correct-usage) mutex turns an accidental second writer
/// from a data race into mutual exclusion.

namespace figdb::serve {

struct ServeOptions {
  ExecutorOptions executor;
  /// Auto-publish after this many applied mutations (0 = explicit
  /// Publish() only).
  std::size_t publish_every = 0;
  /// Keep retired snapshots alive (in RetainedEpochs()) instead of freeing
  /// them. Serving memory then grows with every publish — for tests that
  /// verify per-epoch results after the fact and for epoch archaeology,
  /// never for production serving.
  bool retain_retired = false;
};

/// A search answer plus the epoch it was computed against.
struct ServeResult {
  core::SearchResponse response;
  std::uint64_t epoch = 0;  ///< publish sequence number of the snapshot
  std::uint64_t lsn = 0;    ///< last store mutation folded into it
};

/// Serving-side monotonic counters.
struct ServeStats {
  std::uint64_t epochs_published = 0;
  std::uint64_t epochs_retired = 0;
  std::uint64_t epochs_reclaimed = 0;  ///< retired AND freed
  std::size_t pending_retired = 0;     ///< retired, still pinned by readers
  std::size_t active_readers = 0;
  ExecutorStats executor;
};

class ServingStore {
 public:
  /// Takes ownership of \p store and immediately publishes epoch 1, so the
  /// store is searchable from birth.
  explicit ServingStore(index::FigDbStore store, ServeOptions options = {});
  ~ServingStore();

  ServingStore(const ServingStore&) = delete;
  ServingStore& operator=(const ServingStore&) = delete;

  // ---------------------------------------------------------------- readers
  // Thread-safe; any number of concurrent callers.

  /// Pin the current epoch and run the parallel Algorithm 1 against it.
  /// Error taxonomy = QueryExecutor::Search (invalid argument, deadline,
  /// RESOURCE_EXHAUSTED under overload). \p force_degrade sheds the rerank
  /// stage up front (upstream per-tenant soft-cap degradation).
  util::StatusOr<ServeResult> Search(const corpus::MediaObject& query,
                                     std::size_t k,
                                     const util::QueryBudget& budget = {},
                                     bool force_degrade = false) const;

  /// RAII pin on the current snapshot for direct engine access (tests,
  /// stats, sequential-vs-parallel comparisons). The snapshot stays alive —
  /// across later publishes — for the handle's lifetime.
  class SnapshotHandle {
   public:
    const StoreSnapshot& operator*() const { return *snapshot_; }
    const StoreSnapshot* operator->() const { return snapshot_; }
    const StoreSnapshot* get() const { return snapshot_; }

   private:
    friend class ServingStore;
    SnapshotHandle(std::unique_ptr<util::EpochReclaimer::ReadGuard> guard,
                   const StoreSnapshot* snapshot)
        : guard_(std::move(guard)), snapshot_(snapshot) {}

    std::unique_ptr<util::EpochReclaimer::ReadGuard> guard_;
    const StoreSnapshot* snapshot_;
  };
  SnapshotHandle Acquire() const;

  // ----------------------------------------------------------------- writer
  // Single-threaded by contract (the live store's own invariant).

  /// Forwarded to FigDbStore; counts towards publish_every.
  util::StatusOr<corpus::ObjectId> Ingest(corpus::MediaObject object)
      FIGDB_EXCLUDES(writer_mutex_);
  /// Forwarded to FigDbStore; counts towards publish_every.
  util::Status Remove(corpus::ObjectId id) FIGDB_EXCLUDES(writer_mutex_);
  /// Forwarded to FigDbStore (durability only; does not publish).
  util::Status Checkpoint() FIGDB_EXCLUDES(writer_mutex_);

  /// Compacts the live index, captures the next epoch, swaps it in and
  /// retires the previous snapshot. kFailedPrecondition if the store is
  /// wounded (a snapshot of unprovable state must never be published).
  util::Status Publish() FIGDB_EXCLUDES(writer_mutex_);

  /// The live store (writer-side state: LSNs, WAL stats, wound flag).
  /// Readers must not touch it — they have Acquire()/Search().
  const index::FigDbStore& Store() const { return store_; }

  /// Tears serving down and hands the live store back (the shell's `serve`
  /// drill wraps a store temporarily). Every reader must have drained and
  /// every SnapshotHandle must be gone; the ServingStore is dead afterwards.
  index::FigDbStore Release() && { return std::move(store_); }

  std::uint64_t CurrentEpoch() const;
  ServeStats Stats() const;
  const QueryExecutor& Executor() const { return executor_; }

  /// Retired-but-retained snapshots, oldest first (retain_retired only).
  /// Writer-thread access only while readers are running: the returned
  /// reference is to writer-guarded state and outlives the internal lock,
  /// which is sound only under the single-writer contract.
  const std::vector<std::unique_ptr<const StoreSnapshot>>& RetainedEpochs()
      const FIGDB_EXCLUDES(writer_mutex_) {
    util::MutexLock lock(writer_mutex_);
    return graveyard_;
  }

 private:
  // capture + swap + retire (store must be healthy)
  void PublishLocked() FIGDB_REQUIRES(writer_mutex_);
  void MaybeAutoPublish() FIGDB_REQUIRES(writer_mutex_);

  /// The writer capability: serializes Ingest/Remove/Checkpoint/Publish and
  /// guards all writer-only state. Uncontended when the contract is obeyed.
  /// Ordering: PublishLocked retires the displaced snapshot while holding
  /// this lock, so the reclaimer's retired-list lock nests inside it — a
  /// cross-function nesting the scope-level lock-graph pass cannot see,
  /// hence the explicit declaration.
  mutable util::Mutex writer_mutex_{"serve.ServingStore.writer"}
      FIGDB_ACQUIRED_BEFORE("util.EpochReclaimer.retired");

  index::FigDbStore store_;
  ServeOptions options_;
  mutable QueryExecutor executor_;
  mutable util::EpochReclaimer ebr_;

  /// Current snapshot. seq_cst on both sides: the writer's swap must be
  /// globally ordered against the readers' slot-publish / pointer-load
  /// sequence or a reader could pin an epoch the writer's min-scan missed.
  std::atomic<const StoreSnapshot*> current_{nullptr};

  std::uint64_t next_epoch_ FIGDB_GUARDED_BY(writer_mutex_) = 1;
  std::uint64_t mutations_since_publish_ FIGDB_GUARDED_BY(writer_mutex_) = 0;
  std::atomic<std::uint64_t> epochs_published_{0};
  std::atomic<std::uint64_t> epochs_retired_{0};

  /// retain_retired: retired snapshots parked here (still readable).
  std::vector<std::unique_ptr<const StoreSnapshot>> graveyard_
      FIGDB_GUARDED_BY(writer_mutex_);
};

}  // namespace figdb::serve
