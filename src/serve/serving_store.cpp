#include "serve/serving_store.hpp"

#include <utility>

namespace figdb::serve {

using util::Status;
using util::StatusOr;

ServingStore::ServingStore(index::FigDbStore store, ServeOptions options)
    : store_(std::move(store)),
      options_(options),
      executor_(options.executor) {
  // A ServingStore is searchable from birth: epoch 1 is the store's state
  // as handed in (Create/Recover both yield a healthy store).
  util::MutexLock lock(writer_mutex_);
  PublishLocked();
}

ServingStore::~ServingStore() {
  // Readers must have drained by now (EpochReclaimer's destructor CHECKs
  // it). The current snapshot was never retired, so free it here; the
  // graveyard and the reclaimer free their own.
  delete current_.exchange(nullptr, std::memory_order_seq_cst);
}

void ServingStore::PublishLocked() {
  // Eager compaction at the publish boundary: the snapshot copies a
  // tombstone-free index, so every concurrent Lookup against it takes the
  // pure-read path (the serving half of inverted_index.hpp's contract).
  // Holding writer_mutex_ entitles this thread to the index writer role.
  util::ScopedRole writer(store_.MutableIndex().WriterCap());
  store_.MutableIndex().CompactAll();
  const StoreSnapshot* next =
      StoreSnapshot::Capture(store_, next_epoch_++).release();
  const StoreSnapshot* prev =
      current_.exchange(next, std::memory_order_seq_cst);
  epochs_published_.fetch_add(1, std::memory_order_relaxed);
  mutations_since_publish_ = 0;
  if (prev == nullptr) return;
  epochs_retired_.fetch_add(1, std::memory_order_relaxed);
  if (options_.retain_retired) {
    // Parked, not freed: still-pinned readers stay valid trivially, and
    // tests can re-query any historical epoch afterwards.
    graveyard_.emplace_back(prev);
  } else {
    // Tracked retirement: under lifetime poisoning the storage outlives
    // the object in a poisoned quarantine, so a reader that kept a raw
    // pointer past its pin aborts on this epoch instead of reading
    // freed-but-plausible memory (util/lifetime.hpp).
    ebr_.RetireObject(prev);
  }
}

Status ServingStore::Publish() {
  util::MutexLock lock(writer_mutex_);
  if (store_.Wounded())
    return Status::FailedPrecondition(
        "store is wounded: refusing to publish a snapshot of unprovable "
        "state; run Recover()");
  PublishLocked();
  return Status::Ok();
}

void ServingStore::MaybeAutoPublish() {
  if (options_.publish_every == 0) return;
  if (mutations_since_publish_ >= options_.publish_every) PublishLocked();
}

StatusOr<corpus::ObjectId> ServingStore::Ingest(corpus::MediaObject object) {
  util::MutexLock lock(writer_mutex_);
  StatusOr<corpus::ObjectId> id = store_.Ingest(std::move(object));
  if (id.ok()) {
    ++mutations_since_publish_;
    MaybeAutoPublish();
  }
  return id;
}

Status ServingStore::Remove(corpus::ObjectId id) {
  util::MutexLock lock(writer_mutex_);
  Status s = store_.Remove(id);
  if (s.ok()) {
    ++mutations_since_publish_;
    MaybeAutoPublish();
  }
  return s;
}

Status ServingStore::Checkpoint() {
  util::MutexLock lock(writer_mutex_);
  return store_.Checkpoint();
}

StatusOr<ServeResult> ServingStore::Search(const corpus::MediaObject& query,
                                           std::size_t k,
                                           const util::QueryBudget& budget,
                                           bool force_degrade) const {
  // Pin first, load second: once the guard has published its epoch, any
  // snapshot the subsequent load can observe is protected from reclamation
  // (the writer's min-scan sees the pin before it frees anything newer).
  util::EpochReclaimer::ReadGuard guard(ebr_);
  const StoreSnapshot* snap = current_.load(std::memory_order_seq_cst);
  StatusOr<core::SearchResponse> resp =
      executor_.Search(snap->Engine(), query, k, budget, force_degrade);
  if (!resp.ok()) return resp.status();
  return ServeResult{std::move(*resp), snap->Epoch(), snap->Lsn()};
}

ServingStore::SnapshotHandle ServingStore::Acquire() const {
  auto guard = std::make_unique<util::EpochReclaimer::ReadGuard>(ebr_);
  const StoreSnapshot* snap = current_.load(std::memory_order_seq_cst);
  FIGDB_PIN_ESCAPE_OK("the handle owns the guard: pin and pointer escape together");
  return SnapshotHandle(std::move(guard), snap);
}

std::uint64_t ServingStore::CurrentEpoch() const {
  // Pin even for this one-shot read: an unpinned load races a concurrent
  // Publish, and Epoch() on the retired snapshot is exactly the stale
  // dereference the lifetime layer exists to catch.
  util::EpochReclaimer::ReadGuard guard(ebr_);
  return current_.load(std::memory_order_seq_cst)->Epoch();
}

ServeStats ServingStore::Stats() const {
  // Opportunistic sweep: retirement only reclaims at the NEXT retire, so
  // without this a drained system would report stale pending counts forever.
  // TryReclaim is mutex-serialized and safe from any thread.
  ebr_.TryReclaim();
  ServeStats s;
  s.epochs_published = epochs_published_.load(std::memory_order_relaxed);
  s.epochs_retired = epochs_retired_.load(std::memory_order_relaxed);
  s.epochs_reclaimed = ebr_.TotalReclaimed();
  s.pending_retired = ebr_.PendingRetired();
  s.active_readers = ebr_.ActiveReaders();
  s.executor = executor_.Stats();
  return s;
}

}  // namespace figdb::serve
