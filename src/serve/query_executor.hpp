#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "core/retriever.hpp"
#include "corpus/media_object.hpp"
#include "index/retrieval_engine.hpp"
#include "util/query_budget.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

/// \file query_executor.hpp
/// Admission-controlled parallel execution of Algorithm 1.
///
/// The executor runs the same three-stage plan as FigRetrievalEngine's
/// sequential TrySearch — per-clique candidate generation, Threshold
/// Algorithm merge, full-model rerank — but shards the two embarrassingly
/// parallel stages over a fixed worker pool:
///
///   stage 1  one shard per query clique; each shard builds that clique's
///            complete scored list (engine.BuildCliqueList), written into a
///            slot indexed by clique position, then merged in clique order
///            — the exact list sequence the sequential path builds;
///   stage TA sequential (the merge's frontier walk is inherently ordered
///            and cheap next to scoring);
///   stage 2  one shard per merged candidate; full-model scores land in
///            slots indexed by candidate position and are offered to the
///            top-k collector in sequential order.
///
/// Because every parallel stage writes only position-indexed slots and all
/// cross-candidate ordering decisions happen sequentially afterwards, the
/// unbudgeted result is BIT-IDENTICAL to engine.TrySearch on the same
/// snapshot regardless of worker count or scheduling (asserted across seeds
/// by the serve test suite).
///
/// Admission control: at most max_concurrent queries execute at once;
/// beyond that, Search returns RESOURCE_EXHAUSTED immediately — callers are
/// never queued unboundedly. Between degrade_concurrent and the hard cap,
/// queries are admitted but degrade gracefully by shedding the stage-2
/// rerank first (exact stage-1 scores, tagged truncated), mirroring the
/// budget-pressure shedding order of DESIGN.md §7.
///
/// Deadlines reuse util::QueryBudget. Sequential sections charge a
/// BudgetTracker exactly as TrySearch does; parallel sections poll a
/// shared monotonic deadline through a relaxed atomic expiry flag (a
/// BudgetTracker is single-threaded by design). On expiry mid-stage the
/// executor degrades exactly like the sequential path: complete-or-dropped
/// clique lists (never partial), whole-stage rerank shedding, DEADLINE_
/// EXCEEDED only when nothing at all was produced.
///
/// Fail-points:
///   serve/overload     admission rejects as if over the hard cap
///   serve/slow_worker  a worker shard observes deadline expiry, driving
///                      the degradation paths deterministically

namespace figdb::serve {

struct ExecutorOptions {
  /// Worker threads in the pool. 0 = run shards inline on the caller (the
  /// sequential baseline; still goes through admission control).
  std::size_t workers = 4;
  /// Hard admission cap on concurrently executing queries.
  /// 0 = 4 * max(1, workers).
  std::size_t max_concurrent = 0;
  /// Soft cap: admitted queries above this concurrency shed their rerank
  /// stage (degradation before rejection). 0 = 2 * max(1, workers).
  std::size_t degrade_concurrent = 0;
  /// Deadline applied to queries whose budget has none. <= 0 = none.
  double default_deadline_seconds = 0.0;
};

/// Monotonic counters, readable while serving.
struct ExecutorStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;   ///< RESOURCE_EXHAUSTED at admission
  std::uint64_t degraded = 0;   ///< admitted with rerank shed (soft cap)
  std::uint64_t completed = 0;  ///< returned OK
};

class QueryExecutor {
 public:
  explicit QueryExecutor(ExecutorOptions options);

  /// Parallel Algorithm 1 over \p engine (normally a snapshot's engine).
  /// Unbudgeted, un-degraded results are bit-identical to
  /// engine.TrySearch(query, k). Error taxonomy = TrySearch's, plus
  /// RESOURCE_EXHAUSTED when admission rejects. \p force_degrade sheds the
  /// rerank stage as if the soft cap had fired — an upstream admission
  /// layer (the network front-end's per-tenant quotas) degrading a query
  /// it admitted.
  util::StatusOr<core::SearchResponse> Search(
      const index::FigRetrievalEngine& engine,
      const corpus::MediaObject& query, std::size_t k,
      const util::QueryBudget& budget = {},
      bool force_degrade = false) const;

  std::size_t Workers() const { return pool_.Workers(); }
  std::size_t MaxConcurrent() const;
  std::size_t DegradeConcurrent() const;
  std::size_t InFlight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  ExecutorStats Stats() const;

 private:
  core::SearchResponse RunParallel(const index::FigRetrievalEngine& engine,
                                   const core::QueryModel& qm, std::size_t k,
                                   util::BudgetTracker* bt,
                                   const util::QueryBudget& budget,
                                   bool degrade) const;

  ExecutorOptions options_;
  mutable util::ThreadPool pool_;
  mutable std::atomic<std::size_t> in_flight_{0};
  mutable std::atomic<std::uint64_t> admitted_{0};
  mutable std::atomic<std::uint64_t> rejected_{0};
  mutable std::atomic<std::uint64_t> degraded_{0};
  mutable std::atomic<std::uint64_t> completed_{0};
};

}  // namespace figdb::serve
