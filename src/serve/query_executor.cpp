#include "serve/query_executor.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "index/threshold_algorithm.hpp"
#include "util/admission.hpp"
#include "util/failpoint.hpp"
#include "util/shared_deadline.hpp"
#include "util/top_k.hpp"

namespace figdb::serve {
namespace {

using util::BudgetTracker;
using util::QueryBudget;
using util::Status;
using util::StatusOr;

std::vector<core::SearchResult> TakeResults(
    util::TopK<corpus::ObjectId>* topk) {
  std::vector<core::SearchResult> out;
  for (const auto& e : topk->Take()) out.push_back({e.id, e.score});
  return out;
}

/// One worker-side deadline poll. The serve/slow_worker fail-point makes a
/// shard observe expiry deterministically (simulating a stalled worker) —
/// the injection stays at this call site so util::SharedDeadline remains
/// mechanism-only and the shard router can run the same type under its own
/// `shard/slow` drill.
bool PollDeadline(util::SharedDeadline* deadline) {
  if (FIGDB_FAILPOINT("serve/slow_worker")) deadline->ForceExpire();
  return deadline->ExpiredNow();
}

/// RAII in-flight counter: registered before the admission check, released
/// on every exit path, so the count the NEXT query observes is exact.
class AdmissionTicket {
 public:
  explicit AdmissionTicket(std::atomic<std::size_t>* in_flight)
      : in_flight_(in_flight),
        count_(in_flight->fetch_add(1, std::memory_order_acq_rel) + 1) {}
  ~AdmissionTicket() {
    in_flight_->fetch_sub(1, std::memory_order_acq_rel);
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  /// Concurrency level including this query, at admission time.
  std::size_t Count() const { return count_; }

 private:
  std::atomic<std::size_t>* in_flight_;
  std::size_t count_;
};

}  // namespace

QueryExecutor::QueryExecutor(ExecutorOptions options)
    : options_(options), pool_(options.workers) {}

std::size_t QueryExecutor::MaxConcurrent() const {
  if (options_.max_concurrent != 0) return options_.max_concurrent;
  return 4 * std::max<std::size_t>(1, options_.workers);
}

std::size_t QueryExecutor::DegradeConcurrent() const {
  if (options_.degrade_concurrent != 0) return options_.degrade_concurrent;
  return 2 * std::max<std::size_t>(1, options_.workers);
}

ExecutorStats QueryExecutor::Stats() const {
  ExecutorStats s;
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  return s;
}

StatusOr<core::SearchResponse> QueryExecutor::Search(
    const index::FigRetrievalEngine& engine, const corpus::MediaObject& query,
    std::size_t k, const QueryBudget& budget, bool force_degrade) const {
  // Malformed requests are rejected before they consume capacity; same
  // taxonomy and same checks as the sequential TrySearch.
  FIGDB_RETURN_IF_ERROR(engine.ValidateQuery(query, k));
  if (!engine.HasIndex())
    return Status::Unavailable("engine was built without an inverted index");

  AdmissionTicket ticket(&in_flight_);
  // Same short-circuit as before the message rewrite: the overload
  // fail-point is only consulted when the real cap did not already fire,
  // so drills targeting the Nth admission keep their hit arithmetic.
  const bool hard_cap_hit = ticket.Count() > MaxConcurrent();
  const bool overload_injected =
      !hard_cap_hit && FIGDB_FAILPOINT("serve/overload");
  if (hard_cap_hit || overload_injected) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    // Operators must be able to tell SHED from REJECT: name the cap that
    // fired, the load it saw, and both thresholds (util::AdmissionRejection
    // is the shared convention). The soft cap never rejects — it degrades
    // admitted queries by shedding the rerank stage.
    return Status::ResourceExhausted(util::AdmissionRejection(
        hard_cap_hit ? "the hard concurrency cap"
                     : "the serve/overload fail-point",
        ticket.Count() - 1, MaxConcurrent(), DegradeConcurrent()));
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  const bool degrade = force_degrade || ticket.Count() > DegradeConcurrent();
  if (degrade) degraded_.fetch_add(1, std::memory_order_relaxed);

  QueryBudget effective = budget;
  if (effective.wall_limit_seconds <= 0.0 &&
      options_.default_deadline_seconds > 0.0)
    effective.wall_limit_seconds = options_.default_deadline_seconds;

  const core::QueryModel qm =
      engine.Scorer().Compile(query, engine.Options().type_mask);
  BudgetTracker tracker(effective);
  core::SearchResponse resp =
      RunParallel(engine, qm, k, effective.Unlimited() ? nullptr : &tracker,
                  effective, degrade);
  if (resp.results.empty() && tracker.Exhausted())
    return Status::DeadlineExceeded(
        "query budget exhausted before any result was produced");
  completed_.fetch_add(1, std::memory_order_relaxed);
  return resp;
}

core::SearchResponse QueryExecutor::RunParallel(
    const index::FigRetrievalEngine& engine, const core::QueryModel& qm,
    std::size_t k, BudgetTracker* bt, const QueryBudget& budget,
    bool degrade) const {
  const index::EngineOptions& opts = engine.Options();
  core::SearchResponse resp;
  if (engine.Index().Degraded()) resp.truncated = true;

  util::SharedDeadline deadline(budget);

  // Stage 1, sharded per query clique. Each shard builds its clique's
  // complete list into the slot for that clique, so collecting the
  // non-empty slots in clique order reproduces the sequential
  // BuildScoredLists output exactly. A shard that observes deadline expiry
  // drops its WHOLE list (complete-or-absent, like the sequential
  // trailing-clique shed; under parallel scheduling the shed set is an
  // arbitrary subset rather than a suffix, but every surviving list is
  // exact, so scores remain exact for the cliques that were evaluated).
  const std::size_t n_cliques = qm.cliques.size();
  std::vector<index::ScoredList> slots(n_cliques);
  std::vector<std::uint8_t> shed_slot(n_cliques, 0);
  pool_.ParallelFor(n_cliques, [&](std::size_t i) {
    if (PollDeadline(&deadline)) {
      shed_slot[i] = 1;
      return;
    }
    slots[i] = engine.BuildCliqueList(qm.cliques[i]);
  });
  if (deadline.Expired()) {
    resp.truncated = true;
    if (bt != nullptr) bt->ForceDeadline();
  }
  std::vector<index::ScoredList> lists;
  lists.reserve(n_cliques);
  for (std::size_t i = 0; i < n_cliques; ++i)
    if (!shed_slot[i] && !slots[i].entries.empty())
      lists.push_back(std::move(slots[i]));

  // The TA merge stays sequential: its frontier walk is inherently ordered
  // and cheap next to potential evaluation, and running it on the caller's
  // thread lets it share the query's BudgetTracker unchanged.
  const std::size_t stage1_k =
      opts.rerank_candidates == 0 ? k : std::max(k, opts.rerank_candidates);
  std::vector<core::SearchResult> merged =
      opts.merge == index::EngineOptions::MergeMode::kThresholdAlgorithm
          ? index::ThresholdMerge(std::move(lists), stage1_k, bt,
                                  &resp.truncated)
          : index::ExhaustiveMerge(lists, stage1_k, bt, &resp.truncated);
  if (opts.rerank_candidates == 0) {
    resp.results = std::move(merged);
    if (bt != nullptr) resp.scored_candidates = bt->ScoredCandidates();
    return resp;
  }

  // Same shedding ladder as the sequential path, with admission-control
  // degradation joining at the top: an overloaded executor sheds the rerank
  // of every admitted-but-degraded query before rejecting anything.
  bool shed_rerank =
      degrade ||
      (bt != nullptr &&
       (bt->Exhausted() || bt->CheckDeadline() ||
        !bt->HasCandidateAllowance(merged.size())));

  if (!shed_rerank && bt != nullptr && !bt->ChargeScored(merged.size())) {
    // The allowance covered the candidates, so a bulk charge can only fail
    // on the deadline poll.
    shed_rerank = true;
  }

  if (!shed_rerank) {
    // Stage 2, sharded per candidate: full-model scores land in slots
    // indexed by merge position; the top-k offers then happen sequentially
    // in merge order, which reproduces the sequential rerank's tie-breaking
    // bit for bit.
    std::vector<double> scores(merged.size(), 0.0);
    pool_.ParallelFor(merged.size(), [&](std::size_t i) {
      if (PollDeadline(&deadline)) return;
      scores[i] =
          engine.Scorer().Score(qm, engine.GetCorpus().Object(merged[i].object));
    });
    if (deadline.Expired()) {
      // Mid-rerank expiry: some slots were never scored, and mixing stage-1
      // and stage-2 scores would corrupt the ranking — shed the whole stage
      // (sequential semantics).
      shed_rerank = true;
      if (bt != nullptr) bt->ForceDeadline();
    } else {
      util::TopK<corpus::ObjectId> topk(k);
      for (std::size_t i = 0; i < merged.size(); ++i)
        topk.Offer(scores[i], merged[i].object);
      resp.results = TakeResults(&topk);
      resp.reranked = true;
    }
  }
  if (shed_rerank) {
    if (merged.size() > k) merged.resize(k);
    resp.results = std::move(merged);
    resp.truncated = true;
  }
  if (bt != nullptr) resp.scored_candidates = bt->ScoredCandidates();
  return resp;
}

}  // namespace figdb::serve
