#pragma once

#include <cstdint>
#include <memory>

#include "corpus/corpus.hpp"
#include "index/figdb_store.hpp"
#include "index/retrieval_engine.hpp"
#include "util/lifetime.hpp"

/// \file snapshot.hpp
/// One immutable, epoch-stamped view of a FigDbStore for lock-free reads.
///
/// The serving layer never lets readers touch the live store: the writer
/// CAPTUREs the store's state into a StoreSnapshot — a deep copy of the
/// corpus plus a fully compacted copy of the live clique index, wrapped in
/// a query engine that adopts the store's pinned statistics — and publishes
/// it through ServingStore. After construction a snapshot is never written
/// again, so any number of reader threads may run Algorithm 1 against it
/// concurrently (the engine's scoring substrates memoise through internally
/// locked caches; the compacted index takes Lookup's pure-read path).
///
/// Capture cost is O(corpus copy + index copy), NOT O(statistics rebuild):
/// the feature matrix and correlation model are pinned per store lineage
/// (figdb_store.hpp) and shared by every snapshot, which is what makes
/// per-batch epoch publication affordable next to the seconds-scale full
/// engine rebuild.
///
/// Immutability is machine-checked at the type level and by lint, because
/// thread-safety annotations cannot express "write-once then frozen":
/// Capture is the only writer (private constructor, members written before
/// the unique_ptr<const StoreSnapshot> escapes), the public surface is
/// const-only, and figdb-lint's `snapshot-immutability` rule rejects any
/// `friend` declaration in this header and any `const_cast` in serve/ —
/// the two C++ escape hatches that could reintroduce mutation behind the
/// const wall. See DESIGN.md §10.

namespace figdb::serve {

class StoreSnapshot {
 public:
  /// Captures the store's current state as epoch \p epoch. Writer-side only
  /// (reads the live corpus and index, which must not be mutating).
  static std::unique_ptr<const StoreSnapshot> Capture(
      const index::FigDbStore& store, std::uint64_t epoch);

  /// The query engine over this snapshot. Const access only; safe for
  /// concurrent TrySearch / parallel execution.
  const index::FigRetrievalEngine& Engine() const {
    FIGDB_LIFETIME_CHECK(canary_);
    return *engine_;
  }

  std::uint64_t Epoch() const {
    FIGDB_LIFETIME_CHECK(canary_);
    return epoch_;
  }
  /// LSN of the last store mutation folded into this snapshot.
  std::uint64_t Lsn() const {
    FIGDB_LIFETIME_CHECK(canary_);
    return lsn_;
  }
  std::size_t LiveObjects() const {
    FIGDB_LIFETIME_CHECK(canary_);
    return live_objects_;
  }

  /// Lifetime header for EpochReclaimer::RetireObject (DESIGN.md §16).
  const util::lifetime::Canary* LifetimeCanary() const { return &canary_; }

 private:
  StoreSnapshot() = default;

  /// First member on purpose: a stale dereference that misses the
  /// accessors (raw pointer arithmetic) still reads poison, and the
  /// poisoned header sits where a debugger looks first.
  util::lifetime::Canary canary_;
  std::uint64_t epoch_ = 0;
  std::uint64_t lsn_ = 0;
  std::size_t live_objects_ = 0;
  /// Owned copy — the engine points into it, so corpus_ must outlive
  /// engine_ (declaration order gives reverse destruction order).
  corpus::Corpus corpus_;
  std::unique_ptr<index::FigRetrievalEngine> engine_;
};

}  // namespace figdb::serve
