#include "corpus/media_object.hpp"

#include <algorithm>

namespace figdb::corpus {

std::uint32_t MediaObject::TotalFrequency() const {
  std::uint32_t total = 0;
  for (const auto& f : features) total += f.frequency;
  return total;
}

std::uint32_t MediaObject::FrequencyOf(FeatureKey feature) const {
  auto it = std::lower_bound(
      features.begin(), features.end(), feature,
      [](const FeatureOccurrence& f, FeatureKey k) { return f.feature < k; });
  if (it != features.end() && it->feature == feature) return it->frequency;
  return 0;
}

bool MediaObject::Contains(FeatureKey feature) const {
  return FrequencyOf(feature) > 0;
}

void MediaObject::Normalize() {
  std::sort(features.begin(), features.end(),
            [](const FeatureOccurrence& a, const FeatureOccurrence& b) {
              return a.feature < b.feature;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < features.size();) {
    FeatureKey key = features[i].feature;
    std::uint32_t freq = 0;
    while (i < features.size() && features[i].feature == key) {
      freq += features[i].frequency;
      ++i;
    }
    features[out++] = {key, freq};
  }
  features.resize(out);
}

std::vector<FeatureOccurrence> MediaObject::FeaturesOfType(
    FeatureType type) const {
  std::vector<FeatureOccurrence> out;
  for (const auto& f : features)
    if (TypeOf(f.feature) == type) out.push_back(f);
  return out;
}

}  // namespace figdb::corpus
