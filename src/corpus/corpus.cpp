#include "corpus/corpus.hpp"

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace figdb::corpus {

std::string Context::DescribeFeature(FeatureKey key) const {
  const std::uint32_t id = IdOf(key);
  switch (TypeOf(key)) {
    case FeatureType::kText:
      if (id < vocabulary.Size())
        return util::Format("tag:%s", vocabulary.TermOf(id).c_str());
      return util::Format("tag:#%u", id);
    case FeatureType::kVisual:
      return util::Format("vw:%u", id);
    case FeatureType::kUser:
      return util::Format("user:%u", id);
  }
  return util::Format("?:%u", id);
}

ObjectId Corpus::Add(MediaObject object) {
  object.id = static_cast<ObjectId>(objects_.size());
  objects_.push_back(std::move(object));
  return objects_.back().id;
}

const MediaObject& Corpus::Object(ObjectId id) const {
  FIGDB_CHECK(id < objects_.size());
  return objects_[id];
}

MediaObject& Corpus::MutableObject(ObjectId id) {
  FIGDB_CHECK(id < objects_.size());
  return objects_[id];
}

Corpus Corpus::Prefix(std::size_t n) const {
  Corpus out;
  out.context_ = context_;
  const std::size_t count = std::min(n, objects_.size());
  out.objects_.assign(objects_.begin(), objects_.begin() + count);
  return out;
}

}  // namespace figdb::corpus
