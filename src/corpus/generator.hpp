#pragma once

#include <cstdint>
#include <vector>

#include "corpus/corpus.hpp"

/// \file generator.hpp
/// Synthetic social-media corpus generator (the Flickr-crawl substitute).
///
/// The paper evaluates on two crawls: Dret (236,600 "interesting" images,
/// 2008.1-2008.6) and Drec (207,909 favourite images of 279 users). Neither
/// is available, so this generator produces corpora with the statistical
/// structure the FIG model exploits:
///
///  * a set of latent topics; every object has a dominant topic (ground
///    truth for the evaluation oracle, replacing the paper's human judges)
///    and optionally a secondary topic from the same taxonomy domain;
///  * tags drawn from per-topic Zipf tag pools plus a generic noise pool,
///    emitted as raw inflected strings and pushed through the real text
///    pipeline (tokeniser -> Porter stemmer -> stop-word filter ->
///    min-frequency-5 vocabulary pruning, §5.1.3);
///  * visual words either from the full image pipeline (procedural render ->
///    16-D block descriptors -> k-means vocabulary -> quantisation) or from
///    a fast topic-conditioned sampling path with synthetic topic-anchored
///    centroids (identical downstream interface, used at large scales);
///  * uploader + favouriter users whose interests cover few topics and who
///    join per-topic groups (the §3.2 intra-user correlation substrate);
///  * upload months, with per-user interest drift for the recommendation
///    dataset (persistent topics + an old transient interest that dies
///    before the evaluation window + a recent transient interest that
///    persists into it — the paper's "Obama during the election" effect).

namespace figdb::corpus {

struct GeneratorConfig {
  std::size_t num_objects = 20000;
  std::uint64_t seed = 20100611;

  // ---- Topic structure.
  std::size_t num_topics = 40;
  std::size_t topics_per_domain = 5;
  /// Zipf skew of the dominant-topic distribution over objects.
  double topic_zipf = 0.5;
  /// Probability that an object mixes in a secondary same-domain topic.
  double secondary_topic_probability = 0.35;

  // ---- Textual features.
  std::size_t tags_per_topic = 30;
  /// Tags within a topic are grouped into taxonomy clusters of this size.
  std::size_t tags_per_cluster = 5;
  std::size_t generic_tags = 120;
  double generic_tag_probability = 0.22;
  double tag_zipf = 1.05;
  double mean_tags_per_object = 8.0;
  /// Number of the topic's tag clusters an individual object draws from
  /// (the taxonomy clusters of tags_per_cluster tags). Real objects show a
  /// facet of their topic, not the whole tag pool; this intra-topic
  /// sub-structure is what WUP-based correlation can bridge but a low-rank
  /// latent space cannot.
  std::size_t active_clusters_per_object = 2;
  /// Probability a topic-tag draw stays within the object's active
  /// clusters (vs. the topic's whole pool).
  double cluster_focus = 0.8;
  /// Probability a tag token is emitted with a plural inflection (exercises
  /// the stemmer).
  double inflection_probability = 0.2;
  /// Probability of a one-off typo tag (pruned by the min-frequency rule).
  double typo_probability = 0.02;
  /// Probability a raw stop word slips into the tag stream.
  double stopword_probability = 0.03;
  std::uint32_t min_tag_frequency = 5;

  // ---- Visual features.
  std::size_t visual_words = 256;  // paper-fidelity value: 1022
  std::size_t blocks_per_object = 16;
  /// Probability a block's visual word comes from the object's topic pool
  /// (the rest come from a topic-agnostic common pool). Lower = wider
  /// semantic gap.
  double visual_topic_purity = 0.55;
  /// Fraction of the visual vocabulary reserved for per-topic pools.
  double visual_topic_fraction = 0.7;
  /// Width of a topic's visual-word window, in multiples of the per-topic
  /// stride over the shared circular word array. Values above 1 make
  /// neighbouring topics share visual words — the blur behind the visual
  /// modality's semantic gap.
  double visual_window_overlap = 3.0;
  /// Use the full image pipeline (render -> descriptors -> k-means ->
  /// quantise) instead of direct word sampling. Slower; same interface.
  bool use_image_pipeline = false;
  std::size_t kmeans_training_images = 300;
  std::size_t kmeans_iterations = 12;
  double pixel_noise = 0.08;

  // ---- User features.
  std::size_t num_users = 4000;
  std::size_t groups_per_topic = 3;
  double mean_interests_per_user = 2.0;
  double mean_favoriters_per_object = 6.0;
  /// Probability a favouriter/uploader is drawn from users interested in the
  /// object's dominant topic (vs. a uniformly random user).
  double user_topic_affinity = 0.8;

  // ---- Time.
  std::size_t num_months = 6;
};

/// Per-user recommendation ground truth (paper §5.1.2, Drec).
struct RecommendationUser {
  /// Favourite objects in the profile window (months [0, profile_months)).
  std::vector<ObjectId> profile;
  /// Favourite objects in the evaluation window — the "correct"
  /// recommendations.
  std::vector<ObjectId> held_out;
};

/// Ground truth for one injected burst (temporal workload): the topic's
/// tag terms spike in the window epochs, far above their trailing
/// baseline. `terms` holds the vocabulary-surviving tag FeatureKeys of
/// the topic's pool — a burst detector evaluated against these labels is
/// correct when it fires on one of them inside the window.
struct BurstLabel {
  std::uint32_t topic = 0;
  /// Consecutive months the extra uploads were injected into.
  std::vector<std::uint32_t> epochs;
  /// Text FeatureKeys of the topic's pruning-surviving tag pool.
  std::vector<FeatureKey> terms;
};

struct RecommendationDataset {
  Corpus corpus;
  std::vector<RecommendationUser> users;
  /// All objects in the evaluation window (the "newly incoming set").
  std::vector<ObjectId> candidates;
  std::size_t profile_months = 3;
  /// Injected burst ground truth (empty unless num_burst_topics > 0).
  std::vector<BurstLabel> bursts;
};

struct RecommendationConfig {
  std::size_t num_profile_users = 60;
  std::size_t profile_months = 3;
  double mean_favorites_per_month = 20.0;
  std::size_t persistent_topics_per_user = 2;
  /// Interest weight of an active transient topic relative to a persistent
  /// topic's weight of 1.
  double transient_weight = 2.5;
  /// How many months before the evaluation window the user's NEW transient
  /// interest switches on. With lead L and P profile months, the new
  /// interest is active from month P - L onwards (and through the whole
  /// evaluation window); larger leads give moderate decay values more
  /// profile evidence to exploit.
  std::size_t new_interest_lead = 2;

  // ---- Burst/event injection (temporal workload; 0 = off, and the
  // dataset is then draw-for-draw identical to the pre-burst generator).
  /// Distinct topics given an upload burst inside the evaluation window.
  std::size_t num_burst_topics = 0;
  /// Consecutive months each burst lasts (clipped at num_months).
  std::size_t burst_window_months = 1;
  /// Extra objects of the burst topic injected per burst month. Sized so
  /// the topic's head tags spike far above the trailing baseline of
  /// ~num_objects/(num_months * num_topics) topical objects per month.
  std::size_t burst_objects_per_month = 150;
};

/// Deterministic corpus synthesis; one Generator instance per dataset.
class Generator {
 public:
  explicit Generator(GeneratorConfig config);

  /// Builds the retrieval corpus (Dret analogue).
  Corpus MakeRetrievalCorpus();

  /// Builds the recommendation dataset (Drec analogue): a corpus spanning
  /// all months plus per-user favourite histories split into a profile
  /// window and a held-out evaluation window.
  RecommendationDataset MakeRecommendationDataset(
      const RecommendationConfig& rec);

  const GeneratorConfig& Config() const { return config_; }

 private:
  GeneratorConfig config_;
};

}  // namespace figdb::corpus
