#include "corpus/generator.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "text/porter_stemmer.hpp"
#include "text/stopwords.hpp"
#include "text/tokenizer.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "vision/block_features.hpp"
#include "vision/image_synth.hpp"
#include "vision/kmeans.hpp"

namespace figdb::corpus {
namespace {

constexpr std::uint32_t kNoTopic = MediaObject::kInvalidTopic;

/// Pre-materialised object before vocabulary pruning / feature-id assignment.
struct Draft {
  std::uint32_t topic = kNoTopic;
  std::uint32_t secondary = kNoTopic;
  std::uint16_t month = 0;
  std::vector<std::string> tag_stems;  // post tokenizer/stemmer/stopwords
  std::vector<vision::VisualWordId> visual_words;   // direct path
  std::vector<vision::Descriptor> descriptors;      // image-pipeline path
  std::vector<social::UserId> users;
};

/// All shared synthesis state: topic tag pools, user interests, visual word
/// pools. Owns the deterministic Rng streams.
class SynthesisEngine {
 public:
  explicit SynthesisEngine(const GeneratorConfig& cfg)
      : cfg_(cfg),
        rng_(cfg.seed),
        synthesizer_(cfg.num_topics, vision::SynthesizerOptions{
                                         .pixel_noise = cfg.pixel_noise,
                                         .seed = cfg.seed ^ 0xabcdefULL}) {
    BuildTagPools();
    BuildUsers();
    BuildVisualPools();
  }

  /// Samples one object draft with the given month. A forced topic (burst
  /// injection) replaces the Zipf topic draw; everything downstream — tag
  /// mix, visual words, favouriters — is sampled normally, so injected
  /// objects are indistinguishable from organic ones except in volume.
  Draft MakeDraft(std::uint16_t month, std::uint32_t forced_topic = kNoTopic) {
    Draft d;
    d.month = month;
    d.topic = forced_topic != kNoTopic
                  ? forced_topic
                  : static_cast<std::uint32_t>(
                        rng_.Zipf(cfg_.num_topics, cfg_.topic_zipf));
    if (rng_.Bernoulli(cfg_.secondary_topic_probability))
      d.secondary = SameDomainNeighbor(d.topic);
    SampleTags(&d);
    if (cfg_.use_image_pipeline) {
      RenderDescriptors(&d);
    } else {
      SampleVisualWords(&d);
    }
    SampleUsers(&d);
    return d;
  }

  /// Converts drafts into a Corpus: builds the vocabulary (with pruning),
  /// taxonomy, visual vocabulary and user graph, then materialises objects.
  Corpus Build(std::vector<Draft> drafts) {
    Corpus corpus;
    Context& ctx = corpus.MutableContext();
    ctx.num_topics = cfg_.num_topics;

    // ---- Vocabulary with the paper's min-frequency pruning (§5.1.3).
    for (const Draft& d : drafts)
      for (const std::string& stem : d.tag_stems)
        ctx.vocabulary.AddOccurrence(stem);
    ctx.vocabulary.Prune(cfg_.min_tag_frequency);

    BuildTaxonomy(&ctx);
    BuildVisualVocabulary(&drafts, &ctx);
    ctx.user_graph = std::move(user_graph_);

    // ---- Materialise objects.
    for (Draft& d : drafts) {
      MediaObject obj;
      obj.topic = d.topic;
      obj.month = d.month;
      for (const std::string& stem : d.tag_stems) {
        const text::TermId id = ctx.vocabulary.Lookup(stem);
        if (id == text::kInvalidTerm) continue;  // pruned typo/rare tag
        obj.features.push_back({MakeFeatureKey(FeatureType::kText, id), 1});
      }
      for (vision::VisualWordId w : d.visual_words)
        obj.features.push_back({MakeFeatureKey(FeatureType::kVisual, w), 1});
      for (social::UserId u : d.users)
        obj.features.push_back({MakeFeatureKey(FeatureType::kUser, u), 1});
      obj.Normalize();
      corpus.Add(std::move(obj));
    }
    return corpus;
  }

  util::Rng* MutableRng() { return &rng_; }

  const std::vector<std::uint32_t>& UsersInterestedIn(
      std::uint32_t topic) const {
    return topic_users_[topic];
  }

  /// Raw tag pool of \p topic (stems; some may be vocabulary-pruned).
  const std::vector<std::string>& TopicTags(std::uint32_t topic) const {
    return topic_tags_[topic];
  }

 private:
  // ------------------------------------------------------------------ words
  /// Generates a pronounceable pseudo-word that is a Porter-stem fixed
  /// point, survives plural inflection, is not a stop word and is unique.
  std::string MakeWord(std::size_t min_syllables = 2,
                       std::size_t max_syllables = 4) {
    static constexpr char kConsonants[] = "bcdfgklmnprtvz";
    static constexpr char kVowels[] = "aeiou";
    text::PorterStemmer stemmer;
    for (int attempt = 0; attempt < 1000; ++attempt) {
      std::string w;
      const std::size_t syllables = static_cast<std::size_t>(
          rng_.UniformInt(std::int64_t(min_syllables),
                          std::int64_t(max_syllables)));
      for (std::size_t s = 0; s < syllables; ++s) {
        w += kConsonants[rng_.UniformInt(sizeof(kConsonants) - 1)];
        w += kVowels[rng_.UniformInt(sizeof(kVowels) - 1)];
      }
      w += kConsonants[rng_.UniformInt(sizeof(kConsonants) - 2)];  // not 'z'
      if (w.back() == 's') continue;
      if (text::IsStopword(w)) continue;
      if (stemmer.Stem(w) != w) continue;
      if (stemmer.Stem(w + "s") != w) continue;
      if (!used_words_.insert(w).second) continue;
      return w;
    }
    FIGDB_CHECK_MSG(false, "could not synthesise a fresh pseudo-word");
    return {};
  }

  void BuildTagPools() {
    topic_tags_.resize(cfg_.num_topics);
    for (std::size_t t = 0; t < cfg_.num_topics; ++t) {
      topic_tags_[t].reserve(cfg_.tags_per_topic);
      for (std::size_t j = 0; j < cfg_.tags_per_topic; ++j) {
        std::string w = MakeWord();
        topic_word_info_[w] = {static_cast<std::uint32_t>(t),
                               static_cast<std::uint32_t>(
                                   j / std::max<std::size_t>(
                                           1, cfg_.tags_per_cluster))};
        topic_tags_[t].push_back(std::move(w));
      }
    }
    generic_tags_.reserve(cfg_.generic_tags);
    for (std::size_t j = 0; j < cfg_.generic_tags; ++j) {
      std::string w = MakeWord();
      generic_word_set_.insert(w);
      generic_tags_.push_back(std::move(w));
    }
  }

  // ------------------------------------------------------------------ users
  void BuildUsers() {
    for (std::size_t u = 0; u < cfg_.num_users; ++u) user_graph_.AddUser();
    const std::size_t num_groups = cfg_.num_topics * cfg_.groups_per_topic;
    for (std::size_t g = 0; g < num_groups; ++g) user_graph_.AddGroup();

    topic_users_.resize(cfg_.num_topics);
    for (std::size_t u = 0; u < cfg_.num_users; ++u) {
      const int extra =
          rng_.Poisson(std::max(0.0, cfg_.mean_interests_per_user - 1.0));
      const std::size_t interests =
          std::min<std::size_t>(1 + extra, cfg_.num_topics);
      std::unordered_set<std::uint32_t> chosen;
      while (chosen.size() < interests) {
        chosen.insert(static_cast<std::uint32_t>(
            rng_.Zipf(cfg_.num_topics, cfg_.topic_zipf)));
      }
      for (std::uint32_t t : chosen) {
        topic_users_[t].push_back(static_cast<std::uint32_t>(u));
        // Join 1-2 of the topic's groups.
        const std::size_t joins = 1 + rng_.UniformInt(2);
        for (std::size_t j = 0; j < joins; ++j) {
          const social::GroupId g = static_cast<social::GroupId>(
              t * cfg_.groups_per_topic +
              rng_.UniformInt(cfg_.groups_per_topic));
          user_graph_.AddMembership(static_cast<social::UserId>(u), g);
        }
      }
    }
    // Guarantee every topic has at least one interested user.
    for (std::size_t t = 0; t < cfg_.num_topics; ++t) {
      if (topic_users_[t].empty()) {
        const std::uint32_t u =
            static_cast<std::uint32_t>(rng_.UniformInt(cfg_.num_users));
        topic_users_[t].push_back(u);
        user_graph_.AddMembership(
            u, static_cast<social::GroupId>(t * cfg_.groups_per_topic));
      }
    }
  }

  // ----------------------------------------------------------------- visual
  void BuildVisualPools() {
    if (cfg_.use_image_pipeline) return;
    // Topic words live on a circular array; each topic samples from a
    // window around its anchor, and windows of neighbouring topics overlap
    // (visual_window_overlap > 1). Centroids follow a slow random walk
    // along the array so nearby words are also visually similar -- the
    // intra-visual correlation structure of Sec 3.2 with a realistic blur.
    topic_visual_span_ = std::max<std::size_t>(
        cfg_.num_topics,
        static_cast<std::size_t>(cfg_.visual_words *
                                 cfg_.visual_topic_fraction));
    topic_visual_stride_ =
        std::max<std::size_t>(1, topic_visual_span_ / cfg_.num_topics);
    topic_visual_window_ = std::max<std::size_t>(
        topic_visual_stride_,
        static_cast<std::size_t>(double(topic_visual_stride_) *
                                 cfg_.visual_window_overlap));
    common_visual_begin_ = topic_visual_span_;
    const std::size_t total =
        std::max(cfg_.visual_words, common_visual_begin_ + 1);
    visual_centroids_.resize(total);
    util::Rng crng = rng_.Fork();
    auto random_descriptor = [&crng]() {
      vision::Descriptor d{};
      for (int i = 0; i < 8; ++i)
        d[i] = static_cast<float>(crng.UniformReal(0.0, 0.3));
      for (int i = 8; i < 13; ++i)
        d[i] = static_cast<float>(crng.UniformReal(0.2, 0.8));
      d[13] = static_cast<float>(crng.UniformReal(0.0, 0.3));
      d[14] = static_cast<float>(crng.UniformReal(0.0, 0.2));
      d[15] = static_cast<float>(crng.UniformReal(0.0, 0.2));
      return d;
    };
    vision::Descriptor walk = random_descriptor();
    for (std::size_t w = 0; w < topic_visual_span_; ++w) {
      for (auto& x : walk)
        x = std::clamp(x + static_cast<float>(crng.Gaussian(0.0, 0.02)),
                       0.0f, 1.0f);
      visual_centroids_[w] = walk;
    }
    for (std::size_t w = common_visual_begin_; w < total; ++w)
      visual_centroids_[w] = random_descriptor();
  }

  void BuildVisualVocabulary(std::vector<Draft>* drafts, Context* ctx) {
    if (!cfg_.use_image_pipeline) {
      ctx->visual_vocabulary =
          vision::VisualVocabulary::FromCentroids(visual_centroids_);
      return;
    }
    // Full pipeline: train k-means on a descriptor sample, then quantise
    // every draft's descriptors into visual words.
    std::vector<vision::Descriptor> training;
    for (std::size_t i = 0;
         i < std::min(cfg_.kmeans_training_images, drafts->size()); ++i) {
      const auto& ds = (*drafts)[i].descriptors;
      training.insert(training.end(), ds.begin(), ds.end());
    }
    ctx->visual_vocabulary = vision::VisualVocabulary::Build(
        training, vision::KMeansOptions{.k = cfg_.visual_words,
                                        .max_iterations =
                                            cfg_.kmeans_iterations,
                                        .seed = cfg_.seed ^ 0x515ca1eULL});
    for (Draft& d : *drafts) {
      d.visual_words = ctx->visual_vocabulary.QuantizeAll(d.descriptors);
      d.descriptors.clear();
      d.descriptors.shrink_to_fit();
    }
  }

  // ----------------------------------------------------------------- drafts
  std::uint32_t SameDomainNeighbor(std::uint32_t topic) {
    const std::size_t domain = topic / cfg_.topics_per_domain;
    const std::size_t begin = domain * cfg_.topics_per_domain;
    const std::size_t end =
        std::min(begin + cfg_.topics_per_domain, cfg_.num_topics);
    if (end - begin <= 1) return topic;
    for (;;) {
      const std::uint32_t t = static_cast<std::uint32_t>(
          begin + rng_.UniformInt(end - begin));
      if (t != topic) return t;
    }
  }

  void SampleTags(Draft* d) {
    static constexpr const char* kStopSamples[] = {"the", "and", "with",
                                                   "from", "very"};
    text::Tokenizer tokenizer;
    text::PorterStemmer stemmer;

    // The object's active tag clusters: a facet of its topic (§DESIGN).
    const std::size_t cluster_size =
        std::max<std::size_t>(1, cfg_.tags_per_cluster);
    const std::size_t clusters_per_topic = std::max<std::size_t>(
        1, cfg_.tags_per_topic / cluster_size);
    std::vector<std::size_t> active;
    for (std::size_t c = 0;
         c < std::min(cfg_.active_clusters_per_object, clusters_per_topic);
         ++c) {
      active.push_back(rng_.UniformInt(clusters_per_topic));
    }

    auto topic_tag = [&](std::uint32_t topic, bool use_clusters) {
      const auto& pool = topic_tags_[topic];
      if (use_clusters && !active.empty() &&
          rng_.Bernoulli(cfg_.cluster_focus)) {
        const std::size_t cluster = active[rng_.UniformInt(active.size())];
        const std::size_t begin =
            std::min(cluster * cluster_size, pool.size() - 1);
        const std::size_t span =
            std::min(cluster_size, pool.size() - begin);
        return pool[begin + rng_.Zipf(span, cfg_.tag_zipf)];
      }
      return pool[rng_.Zipf(pool.size(), cfg_.tag_zipf)];
    };

    const int count = std::max(3, rng_.Poisson(cfg_.mean_tags_per_object));
    for (int i = 0; i < count; ++i) {
      std::string raw;
      if (rng_.Bernoulli(cfg_.typo_probability)) {
        // A fresh word that occurs once corpus-wide: pruned as noise/typo.
        raw = MakeWord(3, 5);
      } else if (rng_.Bernoulli(cfg_.stopword_probability)) {
        raw = kStopSamples[rng_.UniformInt(std::size(kStopSamples))];
      } else if (rng_.Bernoulli(cfg_.generic_tag_probability)) {
        raw = generic_tags_[rng_.Zipf(generic_tags_.size(), cfg_.tag_zipf)];
      } else if (d->secondary != kNoTopic && rng_.Bernoulli(0.3)) {
        raw = topic_tag(d->secondary, /*use_clusters=*/false);
      } else {
        raw = topic_tag(d->topic, /*use_clusters=*/true);
      }
      if (rng_.Bernoulli(cfg_.inflection_probability)) raw += "s";
      // Real text pipeline: tokenize, drop stop words, stem.
      for (const std::string& token : tokenizer.Tokenize(raw)) {
        if (text::IsStopword(token)) continue;
        d->tag_stems.push_back(stemmer.Stem(token));
      }
    }
  }

  void SampleVisualWords(Draft* d) {
    d->visual_words.reserve(cfg_.blocks_per_object);
    for (std::size_t b = 0; b < cfg_.blocks_per_object; ++b) {
      if (rng_.Bernoulli(cfg_.visual_topic_purity)) {
        std::uint32_t topic = d->topic;
        if (d->secondary != kNoTopic && rng_.Bernoulli(0.3))
          topic = d->secondary;
        const std::size_t offset = rng_.Zipf(topic_visual_window_, 0.8);
        d->visual_words.push_back(static_cast<vision::VisualWordId>(
            (topic * topic_visual_stride_ + offset) % topic_visual_span_));
      } else {
        const std::size_t span =
            visual_centroids_.size() - common_visual_begin_;
        d->visual_words.push_back(static_cast<vision::VisualWordId>(
            common_visual_begin_ + rng_.Zipf(span, 0.8)));
      }
    }
  }

  void RenderDescriptors(Draft* d) {
    std::vector<double> weights(cfg_.num_topics, 0.02);
    weights[d->topic] = 1.0;
    if (d->secondary != kNoTopic) weights[d->secondary] = 0.45;
    const vision::Image img = synthesizer_.Render(weights, &rng_);
    d->descriptors = extractor_.Extract(img);
  }

  void SampleUsers(Draft* d) {
    const int favoriters = rng_.Poisson(cfg_.mean_favoriters_per_object);
    const int total = 1 + favoriters;  // uploader + favouriters
    std::unordered_set<social::UserId> chosen;
    for (int i = 0; i < total; ++i) {
      social::UserId u;
      if (rng_.Bernoulli(cfg_.user_topic_affinity)) {
        const auto& pool = topic_users_[d->topic];
        u = pool[rng_.UniformInt(pool.size())];
      } else {
        u = static_cast<social::UserId>(rng_.UniformInt(cfg_.num_users));
      }
      chosen.insert(u);
    }
    d->users.assign(chosen.begin(), chosen.end());
    std::sort(d->users.begin(), d->users.end());
  }

  // --------------------------------------------------------------- taxonomy
  void BuildTaxonomy(Context* ctx) {
    text::Taxonomy& tax = ctx->taxonomy;
    const text::NodeId root = tax.AddRoot();
    const std::size_t num_domains =
        (cfg_.num_topics + cfg_.topics_per_domain - 1) /
        cfg_.topics_per_domain;
    std::vector<text::NodeId> domains;
    for (std::size_t i = 0; i < num_domains; ++i)
      domains.push_back(tax.AddChild(root, "domain" + std::to_string(i)));

    // topic -> topic node; (topic, cluster) -> cluster node, built lazily.
    std::vector<text::NodeId> topic_nodes(cfg_.num_topics);
    for (std::size_t t = 0; t < cfg_.num_topics; ++t)
      topic_nodes[t] = tax.AddChild(domains[t / cfg_.topics_per_domain],
                                    "topic" + std::to_string(t));
    std::unordered_map<std::uint64_t, text::NodeId> cluster_nodes;

    for (std::size_t id = 0; id < ctx->vocabulary.Size(); ++id) {
      const std::string& stem =
          ctx->vocabulary.TermOf(static_cast<text::TermId>(id));
      auto it = topic_word_info_.find(stem);
      if (it != topic_word_info_.end()) {
        const auto [topic, cluster] = it->second;
        const std::uint64_t key =
            (std::uint64_t(topic) << 32) | cluster;
        auto [cit, inserted] = cluster_nodes.try_emplace(key, 0);
        if (inserted) {
          cit->second = tax.AddChild(topic_nodes[topic],
                                     "cluster" + std::to_string(cluster));
        }
        tax.AttachTerm(static_cast<std::uint32_t>(id),
                       tax.AddChild(cit->second, stem));
      } else {
        // Generic (or surviving typo) word: its own shallow branch so it is
        // weakly related to everything (WUP ~= 0.25-0.33, below threshold).
        const text::NodeId own = tax.AddChild(root, "g_" + stem);
        tax.AttachTerm(static_cast<std::uint32_t>(id),
                       tax.AddChild(own, stem));
      }
    }
  }

  const GeneratorConfig& cfg_;
  util::Rng rng_;
  vision::Synthesizer synthesizer_;
  vision::BlockFeatureExtractor extractor_;

  std::vector<std::vector<std::string>> topic_tags_;
  std::vector<std::string> generic_tags_;
  std::unordered_set<std::string> used_words_;
  std::unordered_map<std::string, std::pair<std::uint32_t, std::uint32_t>>
      topic_word_info_;  // stem -> (topic, cluster)
  std::unordered_set<std::string> generic_word_set_;

  social::UserGraph user_graph_;
  std::vector<std::vector<std::uint32_t>> topic_users_;

  std::vector<vision::Descriptor> visual_centroids_;
  std::size_t topic_visual_span_ = 0;
  std::size_t topic_visual_stride_ = 0;
  std::size_t topic_visual_window_ = 0;
  std::size_t common_visual_begin_ = 0;
};

}  // namespace

Generator::Generator(GeneratorConfig config) : config_(std::move(config)) {
  FIGDB_CHECK(config_.num_topics > 0);
  FIGDB_CHECK(config_.num_months > 0);
  FIGDB_CHECK(config_.num_users > 0);
}

Corpus Generator::MakeRetrievalCorpus() {
  SynthesisEngine engine(config_);
  std::vector<Draft> drafts;
  drafts.reserve(config_.num_objects);
  for (std::size_t i = 0; i < config_.num_objects; ++i) {
    const std::uint16_t month = static_cast<std::uint16_t>(
        engine.MutableRng()->UniformInt(config_.num_months));
    drafts.push_back(engine.MakeDraft(month));
  }
  return engine.Build(std::move(drafts));
}

RecommendationDataset Generator::MakeRecommendationDataset(
    const RecommendationConfig& rec) {
  FIGDB_CHECK(rec.profile_months < config_.num_months);
  SynthesisEngine engine(config_);

  // Objects are spread evenly over the months so every month has a pool.
  std::vector<Draft> drafts;
  drafts.reserve(config_.num_objects);
  for (std::size_t i = 0; i < config_.num_objects; ++i) {
    const std::uint16_t month =
        static_cast<std::uint16_t>(i % config_.num_months);
    drafts.push_back(engine.MakeDraft(month));
  }

  // ---- Burst injection: each burst topic receives a slab of extra
  // uploads in a window of evaluation months, so its tag terms spike far
  // above their trailing baseline. Topics are drawn uniformly (not Zipf):
  // a tail topic bursting is the paper's "Obama during the election"
  // event shape, and head topics would drown the spike in their own
  // baseline. Window starts cycle over the evaluation months, which all
  // sit past the profile window and therefore have the
  // min_baseline_epochs of history a detector needs.
  std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> injected;
  if (rec.num_burst_topics > 0) {
    FIGDB_CHECK(rec.burst_window_months > 0);
    FIGDB_CHECK(rec.burst_objects_per_month > 0);
    util::Rng* brng = engine.MutableRng();
    std::vector<std::uint32_t> burst_topics;
    while (burst_topics.size() <
           std::min(rec.num_burst_topics, config_.num_topics)) {
      const std::uint32_t t = static_cast<std::uint32_t>(
          brng->UniformInt(config_.num_topics));
      if (std::find(burst_topics.begin(), burst_topics.end(), t) ==
          burst_topics.end())
        burst_topics.push_back(t);
    }
    const std::size_t span = config_.num_months - rec.profile_months;
    for (std::size_t i = 0; i < burst_topics.size(); ++i) {
      std::vector<std::uint32_t> window;
      const std::size_t start = rec.profile_months + (i % span);
      for (std::size_t w = 0; w < rec.burst_window_months; ++w) {
        if (start + w >= config_.num_months) break;
        window.push_back(static_cast<std::uint32_t>(start + w));
      }
      for (std::uint32_t epoch : window) {
        for (std::size_t j = 0; j < rec.burst_objects_per_month; ++j) {
          drafts.push_back(engine.MakeDraft(
              static_cast<std::uint16_t>(epoch), burst_topics[i]));
        }
      }
      injected.emplace_back(burst_topics[i], std::move(window));
    }
  }

  RecommendationDataset out;
  out.profile_months = rec.profile_months;
  out.corpus = engine.Build(std::move(drafts));

  // Burst ground truth: the injected (topic, window) pairs labeled with
  // the topic's pruning-surviving tag FeatureKeys.
  for (auto& [topic, window] : injected) {
    BurstLabel label;
    label.topic = topic;
    label.epochs = std::move(window);
    for (const std::string& stem : engine.TopicTags(topic)) {
      const text::TermId id = out.corpus.GetContext().vocabulary.Lookup(stem);
      if (id == text::kInvalidTerm) continue;
      label.terms.push_back(MakeFeatureKey(FeatureType::kText, id));
    }
    out.bursts.push_back(std::move(label));
  }

  std::vector<std::vector<ObjectId>> by_month(config_.num_months);
  for (const MediaObject& obj : out.corpus.Objects()) {
    by_month[obj.month].push_back(obj.id);
    if (obj.month >= rec.profile_months) out.candidates.push_back(obj.id);
  }

  util::Rng* rng = engine.MutableRng();
  for (std::size_t u = 0; u < rec.num_profile_users; ++u) {
    RecommendationUser user;

    // Persistent interests, stable over all months.
    std::unordered_set<std::uint32_t> persistent;
    while (persistent.size() <
           std::min<std::size_t>(rec.persistent_topics_per_user,
                                 config_.num_topics)) {
      persistent.insert(static_cast<std::uint32_t>(
          rng->Zipf(config_.num_topics, config_.topic_zipf)));
    }
    // An old transient interest that dies before the evaluation window, and
    // a recent one that starts in the last profile month and persists: the
    // drift FIG-T's decay is designed to exploit (paper §4, Fig. 4).
    auto fresh_topic = [&] {
      for (;;) {
        const std::uint32_t t = static_cast<std::uint32_t>(
            rng->UniformInt(config_.num_topics));
        if (!persistent.count(t)) return t;
      }
    };
    const std::uint32_t old_transient = fresh_topic();
    std::uint32_t new_transient = fresh_topic();
    while (new_transient == old_transient) new_transient = fresh_topic();

    for (std::size_t m = 0; m < config_.num_months; ++m) {
      std::vector<double> interest(config_.num_topics, 0.0);
      for (std::uint32_t t : persistent) interest[t] = 1.0;
      const bool new_active = m + rec.new_interest_lead >= rec.profile_months;
      if (!new_active)  // active only in the early profile months
        interest[old_transient] = rec.transient_weight;
      if (new_active)   // from (profile_months - lead) onwards
        interest[new_transient] = rec.transient_weight;

      const auto& pool = by_month[m];
      if (pool.empty()) continue;
      std::vector<double> weights(pool.size());
      for (std::size_t i = 0; i < pool.size(); ++i) {
        const std::uint32_t t = out.corpus.Object(pool[i]).topic;
        weights[i] = 0.02 + (t < interest.size() ? interest[t] : 0.0);
      }
      const int favorites = std::max(1, rng->Poisson(
                                            rec.mean_favorites_per_month));
      for (int f = 0; f < favorites; ++f) {
        const std::size_t pick = rng->Categorical(weights);
        if (weights[pick] <= 0.0) continue;  // pool exhausted of mass
        weights[pick] = 0.0;                 // without replacement
        if (m < rec.profile_months) {
          user.profile.push_back(pool[pick]);
        } else {
          user.held_out.push_back(pool[pick]);
        }
      }
    }
    out.users.push_back(std::move(user));
  }
  return out;
}

}  // namespace figdb::corpus
