#include "corpus/query_builder.hpp"

#include "text/porter_stemmer.hpp"
#include "text/stopwords.hpp"
#include "text/tokenizer.hpp"
#include "util/check.hpp"
#include "vision/block_features.hpp"

namespace figdb::corpus {

QueryBuilder::QueryBuilder(std::shared_ptr<const Context> context)
    : context_(std::move(context)) {
  FIGDB_CHECK(context_ != nullptr);
}

QueryBuilder& QueryBuilder::AddText(std::string_view raw) {
  const text::Tokenizer tokenizer;
  const text::PorterStemmer stemmer;
  for (const std::string& token : tokenizer.Tokenize(raw)) {
    if (text::IsStopword(token)) continue;
    const text::TermId id = context_->vocabulary.Lookup(stemmer.Stem(token));
    if (id == text::kInvalidTerm) {
      ++dropped_;
      continue;
    }
    draft_.features.push_back({MakeFeatureKey(FeatureType::kText, id), 1});
  }
  return *this;
}

QueryBuilder& QueryBuilder::AddImage(const vision::Image& image) {
  if (context_->visual_vocabulary.WordCount() == 0) {
    ++dropped_;
    return *this;
  }
  const vision::BlockFeatureExtractor extractor;
  for (const vision::Descriptor& d : extractor.Extract(image)) {
    draft_.features.push_back(
        {MakeFeatureKey(FeatureType::kVisual,
                        context_->visual_vocabulary.Quantize(d)),
         1});
  }
  return *this;
}

QueryBuilder& QueryBuilder::AddVisualWord(std::uint32_t word) {
  if (word >= context_->visual_vocabulary.WordCount()) {
    ++dropped_;
    return *this;
  }
  draft_.features.push_back({MakeFeatureKey(FeatureType::kVisual, word), 1});
  return *this;
}

QueryBuilder& QueryBuilder::AddUser(std::uint32_t user) {
  if (user >= context_->user_graph.UserCount()) {
    ++dropped_;
    return *this;
  }
  draft_.features.push_back({MakeFeatureKey(FeatureType::kUser, user), 1});
  return *this;
}

MediaObject QueryBuilder::Build() {
  draft_.Normalize();
  MediaObject out = std::move(draft_);
  draft_ = MediaObject{};
  dropped_ = 0;
  return out;
}

}  // namespace figdb::corpus
