#pragma once

#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "vision/image.hpp"

/// \file query_builder.hpp
/// Builds ad-hoc query objects from raw content.
///
/// Retrieval (Definition 1) takes a query *object*; a real deployment's
/// queries arrive as raw material — free-text tags, a new image, a user id
/// — not as pre-encoded feature ids. QueryBuilder runs the same feature
/// extraction used at corpus-build time against an existing database
/// context: tags go through tokenizer -> stop words -> Porter stemmer ->
/// vocabulary lookup; an image goes through 16x16 block descriptors ->
/// visual-word quantisation; users are validated against the user graph.
/// Unknown tags and users are dropped (they carry no corpus statistics and
/// therefore no retrieval signal).

namespace figdb::corpus {

class QueryBuilder {
 public:
  /// \p context must outlive the builder (typically Corpus::SharedContext).
  explicit QueryBuilder(std::shared_ptr<const Context> context);

  /// Adds free text; every surviving token becomes a text feature.
  QueryBuilder& AddText(std::string_view text);

  /// Adds an image; every 16x16 block becomes one visual-word occurrence.
  QueryBuilder& AddImage(const vision::Image& image);

  /// Adds an already-quantised visual word.
  QueryBuilder& AddVisualWord(std::uint32_t word);

  /// Adds a user (uploader/favouriter); ignored if unknown to the graph.
  QueryBuilder& AddUser(std::uint32_t user);

  /// Number of raw inputs that were dropped as unknown (diagnostics).
  std::size_t DroppedCount() const { return dropped_; }

  /// Produces the normalised query object and resets the builder.
  MediaObject Build();

 private:
  std::shared_ptr<const Context> context_;
  MediaObject draft_;
  std::size_t dropped_ = 0;
};

}  // namespace figdb::corpus
