#pragma once

#include <cstdint>
#include <functional>
#include <vector>

/// \file media_object.hpp
/// The multi-modal social media object O = <T, V, U> of paper §3.1, plus the
/// packed feature identity used across the FIG, statistics and index layers.

namespace figdb::corpus {

using ObjectId = std::uint32_t;
inline constexpr ObjectId kInvalidObject = static_cast<ObjectId>(-1);

/// The three feature modalities of §3.1.
enum class FeatureType : std::uint8_t { kText = 0, kVisual = 1, kUser = 2 };
inline constexpr std::size_t kNumFeatureTypes = 3;

/// Globally unique feature identity: modality in the top 2 bits, the
/// per-modality id (term id / visual word id / user id) in the low 30 bits.
using FeatureKey = std::uint32_t;

inline constexpr FeatureKey MakeFeatureKey(FeatureType type,
                                           std::uint32_t id) {
  return (static_cast<FeatureKey>(type) << 30) | (id & 0x3fffffffu);
}
inline constexpr FeatureType TypeOf(FeatureKey key) {
  return static_cast<FeatureType>(key >> 30);
}
inline constexpr std::uint32_t IdOf(FeatureKey key) {
  return key & 0x3fffffffu;
}

/// One feature occurrence inside an object, with its within-object frequency
/// (a tag can appear in both title and tag list; a visual word can cover
/// several blocks; a user appears once).
struct FeatureOccurrence {
  FeatureKey feature;
  std::uint32_t frequency;
};

/// A multi-modal multimedia object. Feature lists are kept sorted by
/// FeatureKey (which also groups them by modality) and duplicate-free.
struct MediaObject {
  ObjectId id = kInvalidObject;

  /// Sorted, unique (feature, frequency) pairs across all three modalities.
  std::vector<FeatureOccurrence> features;

  /// Upload month, counted from the corpus epoch (the paper time-stamps at
  /// month granularity, §4).
  std::uint16_t month = 0;

  /// Ground-truth dominant latent topic. This substitutes the paper's
  /// human evaluators: a retrieved object is "relevant" iff it shares the
  /// query's dominant topic. kInvalidTopic for objects without ground truth.
  std::uint32_t topic = kInvalidTopic;

  static constexpr std::uint32_t kInvalidTopic = static_cast<std::uint32_t>(-1);

  /// Total feature-occurrence mass: |Oi| in the paper's Eq. 7.
  std::uint32_t TotalFrequency() const;

  /// Frequency of \p feature in this object (0 if absent). O(log n).
  std::uint32_t FrequencyOf(FeatureKey feature) const;

  /// True iff the object contains \p feature.
  bool Contains(FeatureKey feature) const;

  /// Sorts by key and merges duplicates; call after bulk insertion.
  void Normalize();

  /// Features of one modality (contiguous because keys sort by type first).
  std::vector<FeatureOccurrence> FeaturesOfType(FeatureType type) const;
};

}  // namespace figdb::corpus
