#pragma once

#include <memory>
#include <string>
#include <vector>

#include "corpus/media_object.hpp"
#include "social/user_graph.hpp"
#include "text/taxonomy.hpp"
#include "text/vocabulary.hpp"
#include "vision/visual_vocabulary.hpp"

/// \file corpus.hpp
/// The social media database D = {O_i} plus the shared feature substrates
/// every module consults (tag vocabulary + taxonomy, visual vocabulary,
/// user/group graph).

namespace figdb::corpus {

/// Shared per-database context: everything needed to interpret FeatureKeys
/// and to compute intra-type correlations (§3.2).
struct Context {
  text::Vocabulary vocabulary;
  text::Taxonomy taxonomy;
  vision::VisualVocabulary visual_vocabulary;
  social::UserGraph user_graph;
  /// Number of latent ground-truth topics behind the corpus.
  std::size_t num_topics = 0;

  /// Human-readable rendering of a feature ("tag:sunset", "vw:113",
  /// "user:42") for logs, examples and reports.
  std::string DescribeFeature(FeatureKey key) const;
};

/// The database D. Owns its objects and the shared context.
class Corpus {
 public:
  Corpus() : context_(std::make_shared<Context>()) {}

  Context& MutableContext() { return *context_; }
  const Context& GetContext() const { return *context_; }
  std::shared_ptr<const Context> SharedContext() const { return context_; }

  /// Appends an object, assigning its id. Features must be normalized.
  ObjectId Add(MediaObject object);

  std::size_t Size() const { return objects_.size(); }
  const MediaObject& Object(ObjectId id) const;
  const std::vector<MediaObject>& Objects() const { return objects_; }

  /// Mutable access for the live store's tombstoning (index/figdb_store):
  /// removing an object clears its slot in place so every surviving id —
  /// and therefore every posting list and score — stays stable.
  MediaObject& MutableObject(ObjectId id);

  /// A corpus restricted to the first \p n objects, sharing this corpus's
  /// context. Used by the scalability experiments (paper Figs. 8-9).
  Corpus Prefix(std::size_t n) const;

 private:
  std::shared_ptr<Context> context_;
  std::vector<MediaObject> objects_;
};

}  // namespace figdb::corpus
