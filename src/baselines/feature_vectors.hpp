#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "corpus/corpus.hpp"
#include "stats/feature_matrix.hpp"
#include "util/sparse_vector.hpp"

/// \file feature_vectors.hpp
/// Per-object, per-modality sparse feature vectors shared by the baselines.
///
/// All three baselines (LSA, TP, RankBoost) operate on plain bag-of-feature
/// vectors: TypedVectors materialises one sparse vector per (object,
/// modality) plus helpers for converting ad-hoc query objects and for
/// candidate generation through the shared FeatureMatrix posting lists.

namespace figdb::baselines {

struct TypedVectorsOptions {
  /// Weight every dimension by log((N+1)/(df+1)). Used by the RankBoost
  /// rankers (arbitrary per-modality relevance functions); the TP kernel
  /// keeps raw frequencies, matching the paper's "all dimensions, no
  /// pruning" characterisation of it.
  bool use_idf = false;
};

class TypedVectors {
 public:
  static TypedVectors Build(const corpus::Corpus& corpus,
                            TypedVectorsOptions options = {},
                            const stats::FeatureMatrix* matrix = nullptr);

  /// Raw-frequency vector of one modality (dimension = FeatureKey).
  const util::SparseVector& Vector(corpus::ObjectId id,
                                   corpus::FeatureType type) const;

  /// Vector over ALL modalities.
  const util::SparseVector& FullVector(corpus::ObjectId id) const;

  std::size_t NumObjects() const { return full_.size(); }

  /// Converts an arbitrary (query) object into a modality-restricted
  /// sparse vector with THIS instance's weighting applied.
  util::SparseVector QueryVector(const corpus::MediaObject& object,
                                 corpus::FeatureType type) const;

  /// Raw-frequency conversions (no weighting).
  static util::SparseVector ToVector(const corpus::MediaObject& object,
                                     corpus::FeatureType type);
  static util::SparseVector ToFullVector(const corpus::MediaObject& object);

  /// Objects sharing at least one of the query's features — the baseline
  /// candidate set (sorted, unique).
  static std::vector<corpus::ObjectId> Candidates(
      const corpus::MediaObject& query, const stats::FeatureMatrix& matrix);

 private:
  double WeightOf(corpus::FeatureKey feature) const;

  // typed_[type][object]
  std::vector<util::SparseVector> typed_[corpus::kNumFeatureTypes];
  std::vector<util::SparseVector> full_;
  std::unordered_map<corpus::FeatureKey, double> idf_;
};

}  // namespace figdb::baselines
