#include "baselines/tensor_product.hpp"

#include "util/check.hpp"
#include "util/top_k.hpp"

namespace figdb::baselines {
namespace {

double FusedKernel(const util::SparseVector* query_vecs,
                   const TypedVectors& vectors, corpus::ObjectId id,
                   const TensorProductOptions& options) {
  double k[corpus::kNumFeatureTypes];
  for (std::size_t t = 0; t < corpus::kNumFeatureTypes; ++t) {
    k[t] = util::SparseVector::Cosine(
        query_vecs[t],
        vectors.Vector(id, static_cast<corpus::FeatureType>(t)));
  }
  double s = 0.0;
  if (options.include_additive)
    for (double v : k) s += v;
  for (std::size_t a = 0; a < corpus::kNumFeatureTypes; ++a)
    for (std::size_t b = a + 1; b < corpus::kNumFeatureTypes; ++b)
      s += k[a] * k[b];
  return s;
}

}  // namespace

TensorProductRetriever::TensorProductRetriever(
    const corpus::Corpus& corpus, std::shared_ptr<const TypedVectors> vectors,
    std::shared_ptr<const stats::FeatureMatrix> matrix,
    TensorProductOptions options)
    : corpus_(&corpus),
      vectors_(std::move(vectors)),
      matrix_(std::move(matrix)),
      options_(options) {
  FIGDB_CHECK(vectors_ != nullptr && matrix_ != nullptr);
}

double TensorProductRetriever::Similarity(const corpus::MediaObject& query,
                                          corpus::ObjectId id) const {
  util::SparseVector qv[corpus::kNumFeatureTypes];
  for (std::size_t t = 0; t < corpus::kNumFeatureTypes; ++t)
    qv[t] = TypedVectors::ToVector(query,
                                   static_cast<corpus::FeatureType>(t));
  return FusedKernel(qv, *vectors_, id, options_);
}

std::vector<core::SearchResult> TensorProductRetriever::Search(
    const corpus::MediaObject& query, std::size_t k) const {
  return Rank(query, TypedVectors::Candidates(query, *matrix_), k);
}

std::vector<core::SearchResult> TensorProductRetriever::Rank(
    const corpus::MediaObject& query,
    const std::vector<corpus::ObjectId>& candidates, std::size_t k) const {
  util::SparseVector qv[corpus::kNumFeatureTypes];
  for (std::size_t t = 0; t < corpus::kNumFeatureTypes; ++t)
    qv[t] = TypedVectors::ToVector(query,
                                   static_cast<corpus::FeatureType>(t));
  util::TopK<corpus::ObjectId> topk(k);
  for (corpus::ObjectId id : candidates)
    topk.Offer(FusedKernel(qv, *vectors_, id, options_), id);
  std::vector<core::SearchResult> out;
  for (const auto& e : topk.Take()) out.push_back({e.id, e.score});
  return out;
}

}  // namespace figdb::baselines
