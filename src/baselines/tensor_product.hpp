#pragma once

#include <memory>

#include "baselines/feature_vectors.hpp"
#include "core/retriever.hpp"
#include "corpus/corpus.hpp"
#include "stats/feature_matrix.hpp"

/// \file tensor_product.hpp
/// The TP early-fusion baseline (paper §5.1.1, after Basilico & Hofmann [3]).
///
/// Basilico & Hofmann fuse heterogeneous information by combining per-source
/// kernels both additively and through tensor products (which on paired
/// inputs multiply the component kernels). Adapted to the three social-media
/// modalities, the similarity between objects is
///
///   s(q, o) = sum_a k_a(q, o)  +  sum_{a < b} k_a(q, o) * k_b(q, o)
///
/// with k_a the cosine kernel of modality a. The product terms are where the
/// tensor structure shows: every dimension of one modality interacts with
/// every dimension of another, with no pruning — the property the paper
/// criticises as noise-prone in high-dimensional social data.

namespace figdb::baselines {

struct TensorProductOptions {
  /// Include the additive (plain-sum) kernel terms alongside the pairwise
  /// products.
  bool include_additive = true;
};

class TensorProductRetriever : public core::Retriever {
 public:
  TensorProductRetriever(const corpus::Corpus& corpus,
                         std::shared_ptr<const TypedVectors> vectors,
                         std::shared_ptr<const stats::FeatureMatrix> matrix,
                         TensorProductOptions options = {});

  std::string Name() const override { return "TP"; }

  std::vector<core::SearchResult> Search(const corpus::MediaObject& query,
                                         std::size_t k) const override;
  std::vector<core::SearchResult> Rank(
      const corpus::MediaObject& query,
      const std::vector<corpus::ObjectId>& candidates,
      std::size_t k) const override;

  /// The fused kernel value for one object pair (exposed for tests).
  double Similarity(const corpus::MediaObject& query,
                    corpus::ObjectId id) const;

 private:
  const corpus::Corpus* corpus_;
  std::shared_ptr<const TypedVectors> vectors_;
  std::shared_ptr<const stats::FeatureMatrix> matrix_;
  TensorProductOptions options_;
};

}  // namespace figdb::baselines
