#include "baselines/feature_vectors.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace figdb::baselines {

TypedVectors TypedVectors::Build(const corpus::Corpus& corpus,
                                 TypedVectorsOptions options,
                                 const stats::FeatureMatrix* matrix) {
  TypedVectors tv;
  if (options.use_idf) {
    FIGDB_CHECK_MSG(matrix != nullptr, "use_idf requires a FeatureMatrix");
  }
  for (auto& v : tv.typed_) v.resize(corpus.Size());
  tv.full_.resize(corpus.Size());
  for (const corpus::MediaObject& obj : corpus.Objects()) {
    for (const corpus::FeatureOccurrence& f : obj.features) {
      double w = f.frequency;
      if (options.use_idf) {
        auto [it, inserted] = tv.idf_.try_emplace(f.feature, 0.0);
        if (inserted) {
          it->second = std::log(
              double(corpus.Size() + 1) /
              (double(matrix->DocumentFrequency(f.feature)) + 1.0));
        }
        w *= it->second;
      }
      const auto type = static_cast<std::size_t>(corpus::TypeOf(f.feature));
      tv.typed_[type][obj.id].Add(f.feature, float(w));
      tv.full_[obj.id].Add(f.feature, float(w));
    }
  }
  for (auto& per_type : tv.typed_)
    for (auto& v : per_type) v.Finalize();
  for (auto& v : tv.full_) v.Finalize();
  return tv;
}

double TypedVectors::WeightOf(corpus::FeatureKey feature) const {
  if (idf_.empty()) return 1.0;
  auto it = idf_.find(feature);
  return it == idf_.end() ? 0.0 : it->second;
}

util::SparseVector TypedVectors::QueryVector(
    const corpus::MediaObject& object, corpus::FeatureType type) const {
  util::SparseVector v;
  for (const corpus::FeatureOccurrence& f : object.features) {
    if (corpus::TypeOf(f.feature) != type) continue;
    const double w = double(f.frequency) * WeightOf(f.feature);
    if (w != 0.0) v.Add(f.feature, float(w));
  }
  v.Finalize();
  return v;
}

const util::SparseVector& TypedVectors::Vector(
    corpus::ObjectId id, corpus::FeatureType type) const {
  const auto t = static_cast<std::size_t>(type);
  FIGDB_CHECK(id < typed_[t].size());
  return typed_[t][id];
}

const util::SparseVector& TypedVectors::FullVector(
    corpus::ObjectId id) const {
  FIGDB_CHECK(id < full_.size());
  return full_[id];
}

util::SparseVector TypedVectors::ToVector(const corpus::MediaObject& object,
                                          corpus::FeatureType type) {
  util::SparseVector v;
  for (const corpus::FeatureOccurrence& f : object.features)
    if (corpus::TypeOf(f.feature) == type)
      v.Add(f.feature, float(f.frequency));
  v.Finalize();
  return v;
}

util::SparseVector TypedVectors::ToFullVector(
    const corpus::MediaObject& object) {
  util::SparseVector v;
  for (const corpus::FeatureOccurrence& f : object.features)
    v.Add(f.feature, float(f.frequency));
  v.Finalize();
  return v;
}

std::vector<corpus::ObjectId> TypedVectors::Candidates(
    const corpus::MediaObject& query, const stats::FeatureMatrix& matrix) {
  std::vector<corpus::ObjectId> out;
  for (const corpus::FeatureOccurrence& f : query.features)
    for (const stats::Posting& p : matrix.Postings(f.feature))
      out.push_back(p.object);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace figdb::baselines
