#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/feature_vectors.hpp"
#include "core/retriever.hpp"
#include "corpus/corpus.hpp"
#include "util/dense_matrix.hpp"

/// \file lsa.hpp
/// The LSA early-fusion baseline (paper §5.1.1, after Wang et al. [22]).
///
/// All modalities are concatenated into one feature-object matrix (every
/// FeatureKey is a dimension), which is factorised with a truncated SVD;
/// similarity is the cosine in the resulting latent space. The SVD is
/// computed with randomised subspace iteration (Halko-Martinsson-Tropp):
/// sketch Y = A*Omega, a few power iterations with re-orthonormalisation,
/// then an exact eigendecomposition of the small projected Gram matrix —
/// no external linear algebra dependency.
///
/// This captures exactly what the paper credits and criticises about early
/// fusion: global statistics give a unified space (fast queries: one dense
/// n x rank scan) but the reduced dimensionality blurs rare features and
/// correlations.

namespace figdb::baselines {

struct LsaOptions {
  std::size_t rank = 64;
  std::size_t oversample = 8;
  std::size_t power_iterations = 2;
  std::uint64_t seed = 0x15a;
  /// Dampen heavy-tailed frequencies with log(1 + tf).
  bool log_tf = true;
  /// Weight dimensions by inverse document frequency (log(N/df)). Without
  /// it the leading singular directions are captured by the ubiquitous
  /// common visual words instead of the topical structure.
  bool use_idf = true;
};

class LsaRetriever : public core::Retriever {
 public:
  /// Runs the factorisation (the expensive global preprocessing the paper
  /// points at); \p corpus must outlive the retriever.
  LsaRetriever(const corpus::Corpus& corpus, LsaOptions options);

  std::string Name() const override { return "LSA"; }

  std::vector<core::SearchResult> Search(const corpus::MediaObject& query,
                                         std::size_t k) const override;
  std::vector<core::SearchResult> Rank(
      const corpus::MediaObject& query,
      const std::vector<corpus::ObjectId>& candidates,
      std::size_t k) const override;

  /// Latent embedding of an arbitrary object (fold-in via V).
  std::vector<double> Embed(const corpus::MediaObject& object) const;

  std::size_t LatentRank() const { return rank_; }
  const std::vector<double>& SingularValues() const { return sigma_; }

 private:
  double CosineToObject(const std::vector<double>& query_embedding,
                        double query_norm, corpus::ObjectId id) const;
  /// tf (optionally log-damped) times idf.
  double Weight(corpus::FeatureKey feature, std::uint32_t frequency) const;

  bool log_tf_ = true;
  std::unordered_map<corpus::FeatureKey, double> idf_;
  std::size_t rank_ = 0;
  std::unordered_map<corpus::FeatureKey, std::uint32_t> column_of_;
  util::DenseMatrix object_embeddings_;   // n x rank (U * Sigma)
  util::DenseMatrix feature_directions_;  // f x rank (V)
  std::vector<double> object_norms_;
  std::vector<double> sigma_;
};

}  // namespace figdb::baselines
