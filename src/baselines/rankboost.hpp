#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "baselines/feature_vectors.hpp"
#include "core/retriever.hpp"
#include "corpus/corpus.hpp"
#include "stats/feature_matrix.hpp"

/// \file rankboost.hpp
/// The RB late-fusion baseline (paper §5.1.1, after Turnbull et al. [21]
/// with RankBoost from Freund et al. [9]).
///
/// Late fusion: each modality produces its own candidate ranking (by
/// cosine similarity); RankBoost learns a weighted combination of the
/// per-modality normalised rank scores from preference pairs (relevant
/// object should outrank irrelevant object). At query time the fused score
/// is sum_t alpha_t * h_t(o), where h_t(o) in [0,1] is object o's
/// normalised standing in modality t's ranking — fusion happens strictly on
/// the result lists, never on the raw features, which is exactly the
/// property the paper contrasts against early fusion.

namespace figdb::baselines {

struct RankBoostOptions {
  /// Boosting rounds; weak learners may repeat (their alphas accumulate).
  std::size_t rounds = 8;
  /// Preference pairs sampled per training query.
  std::size_t pairs_per_query = 400;
  std::uint64_t seed = 0xb005;
};

/// One labelled training query for boosting.
struct RankBoostTrainingQuery {
  corpus::MediaObject query;
  std::unordered_set<corpus::ObjectId> relevant;
};

class RankBoostRetriever : public core::Retriever {
 public:
  RankBoostRetriever(const corpus::Corpus& corpus,
                     std::shared_ptr<const TypedVectors> vectors,
                     std::shared_ptr<const stats::FeatureMatrix> matrix,
                     RankBoostOptions options = {});

  std::string Name() const override { return "RB"; }

  /// Runs RankBoost over the training queries, learning the per-modality
  /// fusion weights. Without training, sensible fixed weights are used
  /// (text 0.5, user 0.35, visual 0.15).
  void Train(const std::vector<RankBoostTrainingQuery>& queries);

  std::vector<core::SearchResult> Search(const corpus::MediaObject& query,
                                         std::size_t k) const override;
  std::vector<core::SearchResult> Rank(
      const corpus::MediaObject& query,
      const std::vector<corpus::ObjectId>& candidates,
      std::size_t k) const override;

  const std::vector<double>& Weights() const { return alpha_; }

 private:
  /// Per-modality normalised rank scores (h_t) for a candidate pool.
  /// rank_scores[t][i] is h_t of candidates[i].
  void RankScores(const corpus::MediaObject& query,
                  const std::vector<corpus::ObjectId>& candidates,
                  std::vector<std::vector<double>>* rank_scores) const;

  const corpus::Corpus* corpus_;
  std::shared_ptr<const TypedVectors> vectors_;
  std::shared_ptr<const stats::FeatureMatrix> matrix_;
  RankBoostOptions options_;
  std::vector<double> alpha_;  // one weight per modality
};

}  // namespace figdb::baselines
