#include "baselines/lsa.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/top_k.hpp"

namespace figdb::baselines {
namespace {

/// Minimal CSR view of the object-by-feature matrix.
struct Csr {
  std::size_t rows = 0, cols = 0;
  std::vector<std::size_t> row_ptr;
  std::vector<std::uint32_t> col;
  std::vector<float> val;

  /// out(rows x d) = this * dense(cols x d).
  util::DenseMatrix Multiply(const util::DenseMatrix& dense) const {
    FIGDB_CHECK(dense.Rows() == cols);
    util::DenseMatrix out(rows, dense.Cols());
    for (std::size_t r = 0; r < rows; ++r) {
      double* o = out.RowPtr(r);
      for (std::size_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
        const double v = val[i];
        const double* d = dense.RowPtr(col[i]);
        for (std::size_t j = 0; j < dense.Cols(); ++j) o[j] += v * d[j];
      }
    }
    return out;
  }

  /// out(cols x d) = this^T * dense(rows x d).
  util::DenseMatrix TransposeMultiply(const util::DenseMatrix& dense) const {
    FIGDB_CHECK(dense.Rows() == rows);
    util::DenseMatrix out(cols, dense.Cols());
    for (std::size_t r = 0; r < rows; ++r) {
      const double* d = dense.RowPtr(r);
      for (std::size_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
        const double v = val[i];
        double* o = out.RowPtr(col[i]);
        for (std::size_t j = 0; j < dense.Cols(); ++j) o[j] += v * d[j];
      }
    }
    return out;
  }
};

}  // namespace

LsaRetriever::LsaRetriever(const corpus::Corpus& corpus, LsaOptions options)
    : log_tf_(options.log_tf) {
  // ---- Document frequencies (for the IDF weights).
  if (options.use_idf) {
    std::unordered_map<corpus::FeatureKey, std::uint32_t> df;
    for (const corpus::MediaObject& obj : corpus.Objects())
      for (const corpus::FeatureOccurrence& f : obj.features) ++df[f.feature];
    idf_.reserve(df.size());
    for (const auto& [feature, count] : df) {
      idf_[feature] =
          std::log(double(corpus.Size() + 1) / (double(count) + 1.0));
    }
  }

  // ---- Assemble the CSR object-by-feature matrix.
  Csr a;
  a.rows = corpus.Size();
  a.row_ptr.reserve(a.rows + 1);
  a.row_ptr.push_back(0);
  for (const corpus::MediaObject& obj : corpus.Objects()) {
    for (const corpus::FeatureOccurrence& f : obj.features) {
      auto [it, inserted] = column_of_.try_emplace(
          f.feature, static_cast<std::uint32_t>(column_of_.size()));
      a.col.push_back(it->second);
      a.val.push_back(static_cast<float>(Weight(f.feature, f.frequency)));
    }
    a.row_ptr.push_back(a.col.size());
  }
  a.cols = column_of_.size();
  rank_ = std::min({options.rank, a.rows, a.cols});
  if (rank_ == 0) return;
  const std::size_t sketch = std::min(rank_ + options.oversample,
                                      std::min(a.rows, a.cols));

  // ---- Randomised subspace iteration.
  util::Rng rng(options.seed);
  util::DenseMatrix omega(a.cols, sketch);
  omega.FillGaussian(&rng);
  util::DenseMatrix y = a.Multiply(omega);
  y.OrthonormalizeColumns();
  for (std::size_t it = 0; it < options.power_iterations; ++it) {
    util::DenseMatrix z = a.TransposeMultiply(y);
    z.OrthonormalizeColumns();
    y = a.Multiply(z);
    y.OrthonormalizeColumns();
  }
  const util::DenseMatrix& q = y;  // orthonormal basis of the range of A

  // ---- Project: B = Q^T A (via Bt = A^T Q), eigen of B B^T = Bt^T Bt.
  util::DenseMatrix bt = a.TransposeMultiply(q);  // f x sketch
  util::DenseMatrix gram = bt.TransposeMultiply(bt);
  std::vector<double> eigvals;
  util::DenseMatrix w;
  util::SymmetricEigen(gram, &eigvals, &w);

  sigma_.resize(rank_);
  for (std::size_t j = 0; j < rank_; ++j)
    sigma_[j] = std::sqrt(std::max(0.0, eigvals[j]));

  // Object embeddings U*Sigma = Q * W[:, :rank] * diag(sigma).
  object_embeddings_ = util::DenseMatrix(a.rows, rank_);
  for (std::size_t i = 0; i < a.rows; ++i) {
    for (std::size_t j = 0; j < rank_; ++j) {
      double s = 0.0;
      for (std::size_t l = 0; l < sketch; ++l)
        s += q.At(i, l) * w.At(l, j);
      object_embeddings_.At(i, j) = s * sigma_[j];
    }
  }
  // Feature directions V = Bt * W[:, :rank] * diag(1/sigma).
  feature_directions_ = util::DenseMatrix(a.cols, rank_);
  for (std::size_t f = 0; f < a.cols; ++f) {
    for (std::size_t j = 0; j < rank_; ++j) {
      if (sigma_[j] <= 1e-12) continue;
      double s = 0.0;
      for (std::size_t l = 0; l < sketch; ++l)
        s += bt.At(f, l) * w.At(l, j);
      feature_directions_.At(f, j) = s / sigma_[j];
    }
  }
  object_norms_.resize(a.rows);
  for (std::size_t i = 0; i < a.rows; ++i) {
    double n = 0.0;
    for (std::size_t j = 0; j < rank_; ++j)
      n += object_embeddings_.At(i, j) * object_embeddings_.At(i, j);
    object_norms_[i] = std::sqrt(n);
  }
}

double LsaRetriever::Weight(corpus::FeatureKey feature,
                            std::uint32_t frequency) const {
  double w = log_tf_ ? std::log1p(double(frequency)) : double(frequency);
  if (!idf_.empty()) {
    auto it = idf_.find(feature);
    w *= it == idf_.end() ? 0.0 : it->second;
  }
  return w;
}

std::vector<double> LsaRetriever::Embed(
    const corpus::MediaObject& object) const {
  std::vector<double> e(rank_, 0.0);
  for (const corpus::FeatureOccurrence& f : object.features) {
    auto it = column_of_.find(f.feature);
    if (it == column_of_.end()) continue;
    const double w = Weight(f.feature, f.frequency);
    for (std::size_t j = 0; j < rank_; ++j)
      e[j] += w * feature_directions_.At(it->second, j);
  }
  return e;
}

double LsaRetriever::CosineToObject(const std::vector<double>& q,
                                    double query_norm,
                                    corpus::ObjectId id) const {
  double dot = 0.0;
  for (std::size_t j = 0; j < rank_; ++j)
    dot += q[j] * object_embeddings_.At(id, j);
  const double denom = query_norm * object_norms_[id];
  return denom <= 1e-300 ? 0.0 : dot / denom;
}

namespace {
double Norm(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}
}  // namespace

std::vector<core::SearchResult> LsaRetriever::Search(
    const corpus::MediaObject& query, std::size_t k) const {
  const std::vector<double> q = Embed(query);
  const double qn = Norm(q);
  util::TopK<corpus::ObjectId> topk(k);
  for (corpus::ObjectId id = 0; id < object_norms_.size(); ++id)
    topk.Offer(CosineToObject(q, qn, id), id);
  std::vector<core::SearchResult> out;
  for (const auto& e : topk.Take()) out.push_back({e.id, e.score});
  return out;
}

std::vector<core::SearchResult> LsaRetriever::Rank(
    const corpus::MediaObject& query,
    const std::vector<corpus::ObjectId>& candidates, std::size_t k) const {
  const std::vector<double> q = Embed(query);
  const double qn = Norm(q);
  util::TopK<corpus::ObjectId> topk(k);
  for (corpus::ObjectId id : candidates)
    topk.Offer(CosineToObject(q, qn, id), id);
  std::vector<core::SearchResult> out;
  for (const auto& e : topk.Take()) out.push_back({e.id, e.score});
  return out;
}

}  // namespace figdb::baselines
