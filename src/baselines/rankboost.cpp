#include "baselines/rankboost.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/top_k.hpp"

namespace figdb::baselines {

RankBoostRetriever::RankBoostRetriever(
    const corpus::Corpus& corpus, std::shared_ptr<const TypedVectors> vectors,
    std::shared_ptr<const stats::FeatureMatrix> matrix,
    RankBoostOptions options)
    : corpus_(&corpus),
      vectors_(std::move(vectors)),
      matrix_(std::move(matrix)),
      options_(options),
      alpha_{0.5, 0.15, 0.35} {  // text, visual, user priors
  FIGDB_CHECK(vectors_ != nullptr && matrix_ != nullptr);
}

void RankBoostRetriever::RankScores(
    const corpus::MediaObject& query,
    const std::vector<corpus::ObjectId>& candidates,
    std::vector<std::vector<double>>* rank_scores) const {
  rank_scores->assign(corpus::kNumFeatureTypes,
                      std::vector<double>(candidates.size(), 0.0));
  if (candidates.empty()) return;
  std::vector<std::size_t> order(candidates.size());
  std::vector<double> sims(candidates.size());
  for (std::size_t t = 0; t < corpus::kNumFeatureTypes; ++t) {
    const auto type = static_cast<corpus::FeatureType>(t);
    const util::SparseVector qv = vectors_->QueryVector(query, type);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      sims[i] =
          util::SparseVector::Cosine(qv, vectors_->Vector(candidates[i],
                                                          type));
    }
    // Normalised rank score: best candidate -> 1, worst -> ~0. Ties share
    // the order given by (score desc, id asc) for determinism.
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (sims[a] != sims[b]) return sims[a] > sims[b];
      return candidates[a] < candidates[b];
    });
    for (std::size_t r = 0; r < order.size(); ++r) {
      (*rank_scores)[t][order[r]] =
          1.0 - double(r) / double(order.size());
    }
  }
}

void RankBoostRetriever::Train(
    const std::vector<RankBoostTrainingQuery>& queries) {
  // Build preference pairs (crucial pairs): relevant should beat irrelevant.
  struct Pair {
    double h[corpus::kNumFeatureTypes];  // h_t(relevant) - h_t(irrelevant)
  };
  std::vector<Pair> pairs;
  util::Rng rng(options_.seed);

  for (const RankBoostTrainingQuery& q : queries) {
    const std::vector<corpus::ObjectId> pool =
        TypedVectors::Candidates(q.query, *matrix_);
    if (pool.size() < 2) continue;
    std::vector<std::vector<double>> h;
    RankScores(q.query, pool, &h);
    std::vector<std::size_t> rel, irr;
    for (std::size_t i = 0; i < pool.size(); ++i)
      (q.relevant.count(pool[i]) ? rel : irr).push_back(i);
    if (rel.empty() || irr.empty()) continue;
    for (std::size_t p = 0; p < options_.pairs_per_query; ++p) {
      const std::size_t a = rel[rng.UniformInt(rel.size())];
      const std::size_t b = irr[rng.UniformInt(irr.size())];
      Pair pair;
      for (std::size_t t = 0; t < corpus::kNumFeatureTypes; ++t)
        pair.h[t] = h[t][a] - h[t][b];
      pairs.push_back(pair);
    }
  }
  if (pairs.empty()) return;

  // RankBoost (Freund et al. [9], Section 3, with the r-based alpha rule):
  // maintain a distribution over crucial pairs; each round pick the weak
  // ranker (modality) with the largest weighted margin r, add
  // alpha = 0.5 ln((1+r)/(1-r)), and exponentially reweight the pairs the
  // combination still misorders.
  std::vector<double> dist(pairs.size(), 1.0 / double(pairs.size()));
  std::vector<double> alpha(corpus::kNumFeatureTypes, 0.0);
  for (std::size_t round = 0; round < options_.rounds; ++round) {
    double best_r = 0.0;
    std::size_t best_t = corpus::kNumFeatureTypes;
    for (std::size_t t = 0; t < corpus::kNumFeatureTypes; ++t) {
      double r = 0.0;
      for (std::size_t p = 0; p < pairs.size(); ++p)
        r += dist[p] * pairs[p].h[t];
      if (std::fabs(r) > std::fabs(best_r)) {
        best_r = r;
        best_t = t;
      }
    }
    if (best_t == corpus::kNumFeatureTypes || std::fabs(best_r) < 1e-9)
      break;
    const double r = std::clamp(best_r, -0.999999, 0.999999);
    const double a = 0.5 * std::log((1.0 + r) / (1.0 - r));
    alpha[best_t] += a;
    double z = 0.0;
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      dist[p] *= std::exp(-a * pairs[p].h[best_t]);
      z += dist[p];
    }
    if (z <= 0.0) break;
    for (double& d : dist) d /= z;
  }
  // Keep the priors if boosting degenerated to a single all-zero vector.
  const double total = std::accumulate(alpha.begin(), alpha.end(), 0.0);
  if (total > 0.0) alpha_ = alpha;
}

std::vector<core::SearchResult> RankBoostRetriever::Search(
    const corpus::MediaObject& query, std::size_t k) const {
  return Rank(query, TypedVectors::Candidates(query, *matrix_), k);
}

std::vector<core::SearchResult> RankBoostRetriever::Rank(
    const corpus::MediaObject& query,
    const std::vector<corpus::ObjectId>& candidates, std::size_t k) const {
  std::vector<std::vector<double>> h;
  RankScores(query, candidates, &h);
  util::TopK<corpus::ObjectId> topk(k);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    double s = 0.0;
    for (std::size_t t = 0; t < corpus::kNumFeatureTypes; ++t)
      s += alpha_[t] * h[t][i];
    topk.Offer(s, candidates[i]);
  }
  std::vector<core::SearchResult> out;
  for (const auto& e : topk.Take()) out.push_back({e.id, e.score});
  return out;
}

}  // namespace figdb::baselines
