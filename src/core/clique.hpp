#pragma once

#include <cstdint>
#include <vector>

#include "core/fig.hpp"

/// \file clique.hpp
/// Enumeration of the FIG cliques that drive the MRF (paper §3.3).
///
/// A "clique" here is a complete subgraph of the FIG *together with the
/// implicit virtual root*, i.e. any non-empty set of pairwise-adjacent
/// feature nodes. The paper's |c| counts the root, so a clique with m
/// feature nodes has |c| = m + 1; this API works in feature counts.
///
/// Enumeration is by ordered extension (each clique is produced exactly
/// once, smallest-index order), capped both in clique size and in total
/// clique count — the paper notes the clique space explodes with the
/// high-dimensional features, which is exactly why λ is bucketed by |c|.

namespace figdb::core {

struct Clique {
  /// Sorted feature keys (never includes the virtual root).
  std::vector<corpus::FeatureKey> features;
  /// Month stamp (max over member nodes' months; used by FIG-T).
  std::uint16_t month = 0;
};

struct CliqueEnumerationOptions {
  /// Maximum feature nodes per clique (paper's |c| - 1).
  std::size_t max_features = 3;
  /// Hard cap on cliques per graph; enumeration stops once reached.
  std::size_t max_cliques = 4096;
  /// Minimum feature nodes per clique (1 = include singletons).
  std::size_t min_features = 1;
};

/// Enumerates cliques of \p fig under \p options. Features within a clique
/// are sorted by FeatureKey; cliques are unique.
std::vector<Clique> EnumerateCliques(const FeatureInteractionGraph& fig,
                                     const CliqueEnumerationOptions& options);

}  // namespace figdb::core
