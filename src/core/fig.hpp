#pragma once

#include <cstdint>
#include <vector>

#include "corpus/media_object.hpp"
#include "stats/correlation.hpp"

/// \file fig.hpp
/// The Feature Interaction Graph (paper §3.2).
///
/// Nodes are the features of one multimedia object (or of a user profile's
/// objects); an edge connects two features whose correlation clears the
/// trained threshold. The virtual root — the object itself, connected to
/// every feature node — is implicit: every clique produced from this graph
/// is understood to include it (§3.3 constrains cliques to "the complete
/// subgraph of FIG with the virtual root and at least one feature node").

namespace figdb::core {

/// Bitmask over corpus::FeatureType used to restrict a FIG to a subset of
/// modalities (the paper's Fig. 5 feature-combination experiments).
enum FeatureTypeMask : std::uint32_t {
  kTextMask = 1u << 0,
  kVisualMask = 1u << 1,
  kUserMask = 1u << 2,
  kAllFeatures = kTextMask | kVisualMask | kUserMask,
};

inline bool MaskContains(std::uint32_t mask, corpus::FeatureType type) {
  return (mask >> static_cast<std::uint32_t>(type)) & 1u;
}

struct FigNode {
  corpus::FeatureKey feature;
  std::uint32_t frequency;
  /// Month stamp of the most recent source object contributing this node
  /// (meaningful for profile FIGs; 0 for single-object FIGs).
  std::uint16_t month = 0;
};

class FeatureInteractionGraph {
 public:
  /// Builds the FIG of a single object: one node per feature (restricted to
  /// \p type_mask), an edge wherever the correlation model says the pair is
  /// correlated.
  static FeatureInteractionGraph Build(const corpus::MediaObject& object,
                                       const stats::CorrelationModel& model,
                                       std::uint32_t type_mask = kAllFeatures);

  std::size_t NodeCount() const { return nodes_.size(); }
  const FigNode& Node(std::size_t i) const { return nodes_[i]; }
  const std::vector<FigNode>& Nodes() const { return nodes_; }

  bool HasEdge(std::size_t i, std::size_t j) const {
    return adjacency_[i * nodes_.size() + j] != 0;
  }
  std::size_t EdgeCount() const;

  /// Construction API (used by Build and by the profile builder in recsys,
  /// which constrains edges to features of the same source object, §4).
  void AddNode(FigNode node);
  void FinalizeNodes();  // allocates the adjacency matrix
  void SetEdge(std::size_t i, std::size_t j);

 private:
  std::vector<FigNode> nodes_;
  std::vector<std::uint8_t> adjacency_;
};

}  // namespace figdb::core
