#pragma once

#include <memory>
#include <vector>

#include "core/clique.hpp"
#include "stats/correlation.hpp"
#include "stats/cors.hpp"

/// \file potential.hpp
/// The MRF potential functions of paper §3.3-3.4.
///
/// For a clique c = {n1..nm, Oi} (m feature nodes + the object):
///
///   P(n1..nm | Oi) = alpha * freq(n1..nm | Oi) / |Oi|
///                  + (1-alpha) * smooth(c, Oi)            (Eq. 7)
///   smooth(c, Oi)  = sum_{ni in c} sum_{nj in Oi - c} Cor(ni, nj)
///                    / (m * |Oi - c|)
///   phi (c, Oi)    = lambda_m * P(n1..nm | Oi)            (Eq. 7 weighting)
///   phi'(c, Oi)    = CorS(n1..nm) * phi(c, Oi)            (Eq. 9)
///
/// Interpretation choices (documented in DESIGN.md):
///  * the joint appearance frequency freq(n1..nm | Oi) is the minimum of
///    the member features' frequencies in Oi (their co-occurrence count),
///    and 0 when any member is absent;
///  * lambda is bucketed by clique size m as the paper prescribes
///    ("we constrain the parameter only related to the number of elements")
///  * the scorer only evaluates cliques whose features all appear in Oi —
///    exactly the candidates Algorithm 1 draws from the inverted lists; the
///    smoothing term then grades them by how well the clique correlates
///    with the *rest* of Oi's features. An ablation flag re-enables
///    smoothing-only credit for partially matching cliques.

namespace figdb::core {

struct MrfOptions {
  /// Eq. 7 smoothing trade-off.
  double alpha = 0.85;
  /// lambda_m by clique feature count: lambda[m-1]; sizes beyond the vector
  /// reuse the last entry. Defaults are overwritten by LambdaTrainer.
  std::vector<double> lambda = {1.0, 30.0, 30.0};
  /// Apply the CorS clique weight of Eq. 9 (ablation switch).
  bool use_cors_weight = true;
  /// Score cliques whose features are NOT all contained in the object via
  /// their smoothing term only (the Eq. 7 bridge between related-but-not-
  /// identical objects; used by the full-model re-scoring stage).
  bool count_partial_cliques = false;
  /// Largest clique (in feature nodes) that earns smoothing-only credit
  /// when not contained. The default covers every clique the model builds;
  /// lowering it to 1 (singletons only) trades a little bridging power for
  /// cheaper re-scoring (see ablation_model).
  std::size_t partial_max_features = 3;
  CliqueEnumerationOptions cliques;
};

class PotentialEvaluator {
 public:
  PotentialEvaluator(std::shared_ptr<const stats::CorrelationModel> cor,
                     std::shared_ptr<const stats::CorSCalculator> cors,
                     MrfOptions options);

  /// Eq. 7: P(n1..nm | obj), including the smoothing component.
  double JointProbability(const std::vector<corpus::FeatureKey>& features,
                          const corpus::MediaObject& obj) const;

  /// Eq. 9 potential phi'(c, obj) (or plain phi when use_cors_weight is
  /// off). Returns 0 for non-contained cliques unless count_partial_cliques.
  double Phi(const Clique& clique, const corpus::MediaObject& obj) const;

  /// CorS weight of a clique (1 when use_cors_weight is off).
  double CliqueWeight(const Clique& clique) const;

  double LambdaFor(std::size_t num_features) const;

  const MrfOptions& Options() const { return options_; }
  const stats::CorrelationModel& Correlations() const { return *cor_; }

  /// Mutable lambda access for the trainer.
  void SetLambda(std::vector<double> lambda);

 private:
  double Smoothing(const std::vector<corpus::FeatureKey>& features,
                   const corpus::MediaObject& obj) const;

  std::shared_ptr<const stats::CorrelationModel> cor_;
  std::shared_ptr<const stats::CorSCalculator> cors_;
  MrfOptions options_;
};

}  // namespace figdb::core
