#include "core/fig.hpp"

#include "util/check.hpp"

namespace figdb::core {

FeatureInteractionGraph FeatureInteractionGraph::Build(
    const corpus::MediaObject& object, const stats::CorrelationModel& model,
    std::uint32_t type_mask) {
  FeatureInteractionGraph fig;
  for (const corpus::FeatureOccurrence& f : object.features) {
    if (!MaskContains(type_mask, corpus::TypeOf(f.feature))) continue;
    fig.AddNode({f.feature, f.frequency, object.month});
  }
  fig.FinalizeNodes();
  for (std::size_t i = 0; i < fig.NodeCount(); ++i) {
    for (std::size_t j = i + 1; j < fig.NodeCount(); ++j) {
      if (model.Correlated(fig.nodes_[i].feature, fig.nodes_[j].feature))
        fig.SetEdge(i, j);
    }
  }
  return fig;
}

void FeatureInteractionGraph::AddNode(FigNode node) {
  FIGDB_CHECK_MSG(adjacency_.empty(), "AddNode after FinalizeNodes");
  nodes_.push_back(node);
}

void FeatureInteractionGraph::FinalizeNodes() {
  adjacency_.assign(nodes_.size() * nodes_.size(), 0);
}

void FeatureInteractionGraph::SetEdge(std::size_t i, std::size_t j) {
  FIGDB_CHECK(i < nodes_.size() && j < nodes_.size());
  FIGDB_CHECK(i != j);
  adjacency_[i * nodes_.size() + j] = 1;
  adjacency_[j * nodes_.size() + i] = 1;
}

std::size_t FeatureInteractionGraph::EdgeCount() const {
  std::size_t count = 0;
  for (std::uint8_t a : adjacency_) count += a;
  return count / 2;
}

}  // namespace figdb::core
