#pragma once

#include <string>
#include <vector>

#include "corpus/media_object.hpp"

/// \file retriever.hpp
/// The retrieval interface shared by the FIG engine and all baselines.
///
/// Definition 1 of the paper: given a query object Oq, score every database
/// object and return the top-k. Recommendation (Definition 2) reuses the
/// same interface by treating the user profile as the query object and
/// ranking a fixed candidate set (the "newly incoming" objects).

namespace figdb::core {

struct SearchResult {
  corpus::ObjectId object;
  double score;
};

/// Result of a budget-aware query (TrySearch / TryRank / TryRecommend).
/// A query that ran out of budget is NOT an error as long as it produced
/// anything: it returns best-so-far results tagged `truncated` so callers
/// can distinguish "the true top-k" from "the best we could afford".
struct SearchResponse {
  std::vector<SearchResult> results;
  /// True when any shedding happened: the rerank stage was dropped,
  /// candidates were cut by the budget, or the index itself is degraded.
  bool truncated = false;
  /// False when the stage-2 full-model rerank was shed (or disabled):
  /// scores are then exact-clique stage-1 scores.
  bool reranked = false;
  /// Candidates charged against the budget (0 when unbudgeted).
  std::size_t scored_candidates = 0;
};

class Retriever {
 public:
  virtual ~Retriever() = default;

  /// Short method name as used in the paper's figures ("FIG", "LSA", "TP",
  /// "RB").
  virtual std::string Name() const = 0;

  /// Top-k most similar database objects for a query object.
  virtual std::vector<SearchResult> Search(const corpus::MediaObject& query,
                                           std::size_t k) const = 0;

  /// Top-k of a fixed candidate set (used by the recommendation task).
  virtual std::vector<SearchResult> Rank(
      const corpus::MediaObject& query,
      const std::vector<corpus::ObjectId>& candidates,
      std::size_t k) const = 0;
};

}  // namespace figdb::core
