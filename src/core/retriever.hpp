#pragma once

#include <string>
#include <vector>

#include "corpus/media_object.hpp"

/// \file retriever.hpp
/// The retrieval interface shared by the FIG engine and all baselines.
///
/// Definition 1 of the paper: given a query object Oq, score every database
/// object and return the top-k. Recommendation (Definition 2) reuses the
/// same interface by treating the user profile as the query object and
/// ranking a fixed candidate set (the "newly incoming" objects).

namespace figdb::core {

struct SearchResult {
  corpus::ObjectId object;
  double score;
};

class Retriever {
 public:
  virtual ~Retriever() = default;

  /// Short method name as used in the paper's figures ("FIG", "LSA", "TP",
  /// "RB").
  virtual std::string Name() const = 0;

  /// Top-k most similar database objects for a query object.
  virtual std::vector<SearchResult> Search(const corpus::MediaObject& query,
                                           std::size_t k) const = 0;

  /// Top-k of a fixed candidate set (used by the recommendation task).
  virtual std::vector<SearchResult> Rank(
      const corpus::MediaObject& query,
      const std::vector<corpus::ObjectId>& candidates,
      std::size_t k) const = 0;
};

}  // namespace figdb::core
