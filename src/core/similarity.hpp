#pragma once

#include <memory>
#include <vector>

#include "core/clique.hpp"
#include "core/potential.hpp"
#include "core/retriever.hpp"
#include "corpus/corpus.hpp"

/// \file similarity.hpp
/// The FIG/MRF similarity measure s(Oq, Oi) of paper Eqs. 2-6: build the
/// query's Feature Interaction Graph, enumerate its cliques, and sum the
/// clique potentials against a database object.

namespace figdb::core {

/// A query compiled into its FIG cliques (with clique weights memoised by
/// the underlying CorS calculator). Build once per query, reuse across all
/// scored objects.
struct QueryModel {
  std::vector<Clique> cliques;
  std::uint32_t type_mask = kAllFeatures;
};

class FigScorer {
 public:
  FigScorer(std::shared_ptr<const PotentialEvaluator> potential);

  /// Compiles a query object: FIG construction + clique enumeration.
  QueryModel Compile(const corpus::MediaObject& query,
                     std::uint32_t type_mask = kAllFeatures) const;

  /// s(Oq, Oi) = sum over query cliques of phi'(c, Oi) (Eq. 6).
  double Score(const QueryModel& query, const corpus::MediaObject& obj) const;

  /// Reference sequential retrieval (paper §3.5 before indexing): scores
  /// every object in \p corpus and returns the top-k.
  std::vector<SearchResult> SequentialSearch(const corpus::Corpus& corpus,
                                             const QueryModel& query,
                                             std::size_t k) const;

  const PotentialEvaluator& Potential() const { return *potential_; }

 private:
  std::shared_ptr<const PotentialEvaluator> potential_;
};

}  // namespace figdb::core
