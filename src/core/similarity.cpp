#include "core/similarity.hpp"

#include "core/fig.hpp"
#include "util/check.hpp"
#include "util/top_k.hpp"

namespace figdb::core {

FigScorer::FigScorer(std::shared_ptr<const PotentialEvaluator> potential)
    : potential_(std::move(potential)) {
  FIGDB_CHECK(potential_ != nullptr);
}

QueryModel FigScorer::Compile(const corpus::MediaObject& query,
                              std::uint32_t type_mask) const {
  QueryModel model;
  model.type_mask = type_mask;
  const FeatureInteractionGraph fig = FeatureInteractionGraph::Build(
      query, potential_->Correlations(), type_mask);
  model.cliques = EnumerateCliques(fig, potential_->Options().cliques);
  return model;
}

double FigScorer::Score(const QueryModel& query,
                        const corpus::MediaObject& obj) const {
  double total = 0.0;
  for (const Clique& c : query.cliques) total += potential_->Phi(c, obj);
  return total;
}

std::vector<SearchResult> FigScorer::SequentialSearch(
    const corpus::Corpus& corpus, const QueryModel& query,
    std::size_t k) const {
  util::TopK<corpus::ObjectId> topk(k);
  for (const corpus::MediaObject& obj : corpus.Objects()) {
    const double s = Score(query, obj);
    if (s > 0.0) topk.Offer(s, obj.id);
  }
  std::vector<SearchResult> out;
  for (const auto& e : topk.Take()) out.push_back({e.id, e.score});
  return out;
}

}  // namespace figdb::core
