#include "core/lambda_trainer.hpp"

#include "util/check.hpp"

namespace figdb::core {

std::vector<double> LambdaTrainer::Train(std::vector<double> initial,
                                         const Objective& objective) const {
  FIGDB_CHECK(!initial.empty());
  std::vector<double> best = initial;
  double best_value = objective(best);
  const std::size_t first = options_.pin_first ? 1 : 0;
  for (std::size_t sweep = 0; sweep < options_.sweeps; ++sweep) {
    bool improved = false;
    for (std::size_t dim = first; dim < best.size(); ++dim) {
      std::vector<double> candidate = best;
      for (double v : options_.grid) {
        if (v == best[dim]) continue;
        candidate[dim] = v;
        const double value = objective(candidate);
        if (value > best_value) {
          best_value = value;
          best = candidate;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  return best;
}

}  // namespace figdb::core
