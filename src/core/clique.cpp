#include "core/clique.hpp"

#include <algorithm>

namespace figdb::core {
namespace {

struct Enumerator {
  const FeatureInteractionGraph& fig;
  const CliqueEnumerationOptions& options;
  std::vector<Clique>* out;
  std::vector<std::size_t> current;

  bool Full() const { return out->size() >= options.max_cliques; }

  void Emit() {
    Clique c;
    c.features.reserve(current.size());
    std::uint16_t month = 0;
    for (std::size_t idx : current) {
      c.features.push_back(fig.Node(idx).feature);
      month = std::max(month, fig.Node(idx).month);
    }
    std::sort(c.features.begin(), c.features.end());
    c.month = month;
    out->push_back(std::move(c));
  }

  /// Extends the current clique with vertices greater than \p last that are
  /// adjacent to every current member.
  void Extend(std::size_t last) {
    if (Full()) return;
    if (current.size() >= options.min_features) Emit();
    if (current.size() >= options.max_features) return;
    for (std::size_t v = last + 1; v < fig.NodeCount(); ++v) {
      bool adjacent_to_all = true;
      for (std::size_t u : current) {
        if (!fig.HasEdge(u, v)) {
          adjacent_to_all = false;
          break;
        }
      }
      if (!adjacent_to_all) continue;
      current.push_back(v);
      Extend(v);
      current.pop_back();
      if (Full()) return;
    }
  }
};

}  // namespace

std::vector<Clique> EnumerateCliques(const FeatureInteractionGraph& fig,
                                     const CliqueEnumerationOptions& options) {
  std::vector<Clique> out;
  if (options.max_features == 0) return out;
  Enumerator e{fig, options, &out, {}};
  for (std::size_t v = 0; v < fig.NodeCount() && !e.Full(); ++v) {
    e.current.assign(1, v);
    e.Extend(v);
  }
  return out;
}

}  // namespace figdb::core
