#pragma once

#include <functional>
#include <vector>

/// \file lambda_trainer.hpp
/// Training of the MRF parameter set Λ (paper §3.4 / §5.2).
///
/// The paper adopts Metzler & Croft's procedure [16]: because the retrieval
/// metric is not differentiable in Λ, the (low-dimensional, |c|-bucketed)
/// parameter vector is optimised by direct search over the simplex —
/// coordinate ascent against the evaluation metric itself. LambdaTrainer is
/// that optimiser; the caller supplies the objective (e.g. mean P@10 of
/// held-out training queries under a candidate λ).

namespace figdb::core {

struct LambdaTrainerOptions {
  /// Values tried for each coordinate in each sweep.
  // CorS-weighted pair/triple potentials are orders of magnitude smaller
  // than unigram potentials, so the grid spans several decades.
  std::vector<double> grid = {0.0, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0};
  /// Full coordinate sweeps.
  std::size_t sweeps = 2;
  /// The first coordinate is pinned to 1.0 (scores are scale-invariant, so
  /// only relative λ matter; pinning removes the degeneracy).
  bool pin_first = true;
};

class LambdaTrainer {
 public:
  using Objective = std::function<double(const std::vector<double>& lambda)>;

  explicit LambdaTrainer(LambdaTrainerOptions options = {})
      : options_(options) {}

  /// Coordinate-ascent over \p initial; returns the best λ found. The
  /// objective is maximised; ties keep the incumbent.
  std::vector<double> Train(std::vector<double> initial,
                            const Objective& objective) const;

 private:
  LambdaTrainerOptions options_;
};

}  // namespace figdb::core
