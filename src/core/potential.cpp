#include "core/potential.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace figdb::core {

PotentialEvaluator::PotentialEvaluator(
    std::shared_ptr<const stats::CorrelationModel> cor,
    std::shared_ptr<const stats::CorSCalculator> cors, MrfOptions options)
    : cor_(std::move(cor)), cors_(std::move(cors)), options_(options) {
  FIGDB_CHECK(cor_ != nullptr && cors_ != nullptr);
  FIGDB_CHECK(!options_.lambda.empty());
  FIGDB_CHECK(options_.alpha >= 0.0 && options_.alpha <= 1.0);
}

double PotentialEvaluator::LambdaFor(std::size_t num_features) const {
  if (num_features == 0) return 0.0;
  const std::size_t idx = std::min(num_features, options_.lambda.size()) - 1;
  return options_.lambda[idx];
}

void PotentialEvaluator::SetLambda(std::vector<double> lambda) {
  FIGDB_CHECK(!lambda.empty());
  options_.lambda = std::move(lambda);
}

double PotentialEvaluator::Smoothing(
    const std::vector<corpus::FeatureKey>& features,
    const corpus::MediaObject& obj) const {
  // sum over clique features x (object features outside the clique).
  double total = 0.0;
  std::size_t outside = 0;
  for (const corpus::FeatureOccurrence& f : obj.features) {
    const bool in_clique =
        std::binary_search(features.begin(), features.end(), f.feature);
    if (in_clique) continue;
    ++outside;
    for (corpus::FeatureKey n : features) total += cor_->Cor(n, f.feature);
  }
  if (outside == 0 || features.empty()) return 0.0;
  return total / (double(features.size()) * double(outside));
}

double PotentialEvaluator::JointProbability(
    const std::vector<corpus::FeatureKey>& features,
    const corpus::MediaObject& obj) const {
  const std::uint32_t size = obj.TotalFrequency();
  // Joint appearance frequency: co-occurrence count = min member frequency,
  // zero if any member is missing.
  std::uint32_t joint = std::numeric_limits<std::uint32_t>::max();
  for (corpus::FeatureKey n : features)
    joint = std::min(joint, obj.FrequencyOf(n));
  const double freq_part =
      (size == 0 || features.empty()) ? 0.0 : double(joint) / double(size);

  double p = options_.alpha * freq_part;
  if (options_.alpha < 1.0)
    p += (1.0 - options_.alpha) * Smoothing(features, obj);
  return p;
}

double PotentialEvaluator::CliqueWeight(const Clique& clique) const {
  return options_.use_cors_weight ? cors_->Compute(clique.features) : 1.0;
}

double PotentialEvaluator::Phi(const Clique& clique,
                               const corpus::MediaObject& obj) const {
  bool contained = true;
  for (corpus::FeatureKey n : clique.features) {
    if (!obj.Contains(n)) {
      contained = false;
      break;
    }
  }
  if (!contained) {
    if (!options_.count_partial_cliques) return 0.0;
    if (clique.features.size() > options_.partial_max_features) return 0.0;
  }
  const double lambda = LambdaFor(clique.features.size());
  if (lambda == 0.0) return 0.0;
  const double weight = CliqueWeight(clique);
  if (weight == 0.0) return 0.0;
  return lambda * weight * JointProbability(clique.features, obj);
}

}  // namespace figdb::core
