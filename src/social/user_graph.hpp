#pragma once

#include <cstdint>
#include <vector>

/// \file user_graph.hpp
/// Users, interest groups and the membership bipartite graph.
///
/// The paper's user feature (§5.1.3) is the set of users who uploaded an
/// image or marked it "favorite"; intra-user correlation (§3.2) is defined
/// through shared group membership: "If two users belong to the same group,
/// two users are considered to be correlated."

namespace figdb::social {

using UserId = std::uint32_t;
using GroupId = std::uint32_t;

class UserGraph {
 public:
  UserId AddUser();
  GroupId AddGroup();

  /// Records that \p user belongs to \p group (idempotent).
  void AddMembership(UserId user, GroupId group);

  std::size_t UserCount() const { return user_groups_.size(); }
  std::size_t GroupCount() const { return group_users_.size(); }

  /// Sorted group ids of a user.
  const std::vector<GroupId>& GroupsOf(UserId user) const;

  /// Sorted member ids of a group.
  const std::vector<UserId>& MembersOf(GroupId group) const;

  /// The paper's binary intra-user correlation: true iff the users share at
  /// least one group.
  bool SharesGroup(UserId a, UserId b) const;

  /// Jaccard similarity of the two users' group sets; a graded variant used
  /// as the correlation *strength* where a real value is needed.
  double GroupJaccard(UserId a, UserId b) const;

 private:
  std::vector<std::vector<GroupId>> user_groups_;
  std::vector<std::vector<UserId>> group_users_;
};

}  // namespace figdb::social
