#include "social/user_graph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace figdb::social {

UserId UserGraph::AddUser() {
  user_groups_.emplace_back();
  return static_cast<UserId>(user_groups_.size() - 1);
}

GroupId UserGraph::AddGroup() {
  group_users_.emplace_back();
  return static_cast<GroupId>(group_users_.size() - 1);
}

void UserGraph::AddMembership(UserId user, GroupId group) {
  FIGDB_CHECK(user < user_groups_.size());
  FIGDB_CHECK(group < group_users_.size());
  auto& groups = user_groups_[user];
  auto it = std::lower_bound(groups.begin(), groups.end(), group);
  if (it != groups.end() && *it == group) return;
  groups.insert(it, group);
  auto& members = group_users_[group];
  members.insert(std::lower_bound(members.begin(), members.end(), user),
                 user);
}

const std::vector<GroupId>& UserGraph::GroupsOf(UserId user) const {
  FIGDB_CHECK(user < user_groups_.size());
  return user_groups_[user];
}

const std::vector<UserId>& UserGraph::MembersOf(GroupId group) const {
  FIGDB_CHECK(group < group_users_.size());
  return group_users_[group];
}

bool UserGraph::SharesGroup(UserId a, UserId b) const {
  const auto& ga = GroupsOf(a);
  const auto& gb = GroupsOf(b);
  std::size_t i = 0, j = 0;
  while (i < ga.size() && j < gb.size()) {
    if (ga[i] == gb[j]) return true;
    if (ga[i] < gb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

double UserGraph::GroupJaccard(UserId a, UserId b) const {
  const auto& ga = GroupsOf(a);
  const auto& gb = GroupsOf(b);
  if (ga.empty() && gb.empty()) return 0.0;
  std::size_t i = 0, j = 0, common = 0;
  while (i < ga.size() && j < gb.size()) {
    if (ga[i] == gb[j]) {
      ++common;
      ++i;
      ++j;
    } else if (ga[i] < gb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const std::size_t uni = ga.size() + gb.size() - common;
  return uni == 0 ? 0.0 : double(common) / double(uni);
}

}  // namespace figdb::social
