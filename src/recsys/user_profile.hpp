#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/clique.hpp"
#include "corpus/corpus.hpp"
#include "stats/correlation.hpp"

/// \file user_profile.hpp
/// The user profile Hu of paper §4: the "big object" formed by a user's
/// historical favourite/uploaded objects.
///
/// Two §4 refinements over naive feature union:
///  * edges (and therefore cliques) are only formed between features of the
///    SAME source object — features from different favourites never form a
///    clique, avoiding the noisy cross-object cliques the paper warns about;
///  * every clique occurrence carries the month stamp of its source object,
///    so the recommender can decay old evidence (FIG-T).

namespace figdb::recsys {

/// A clique of the profile FIG with one month stamp per source-object
/// occurrence (the same feature set favourited in months 1 and 3 yields
/// months = {1, 3}).
struct ProfileClique {
  std::vector<corpus::FeatureKey> features;
  std::vector<std::uint16_t> months;
};

struct UserProfile {
  std::vector<ProfileClique> cliques;
  /// The flat "big object" union of the history's features (frequencies
  /// summed). This is what the baselines — which have no per-object edge
  /// constraint — use as their query.
  corpus::MediaObject merged;
};

struct ProfileBuilderOptions {
  core::CliqueEnumerationOptions cliques = {.max_features = 3,
                                            .max_cliques = 1024};
  std::uint32_t type_mask = core::kAllFeatures;
};

class ProfileBuilder {
 public:
  ProfileBuilder(std::shared_ptr<const stats::CorrelationModel> correlations,
                 ProfileBuilderOptions options = {});

  /// Builds Hu from the user's history (object ids into \p corpus).
  UserProfile Build(const corpus::Corpus& corpus,
                    const std::vector<corpus::ObjectId>& history) const;

 private:
  std::shared_ptr<const stats::CorrelationModel> correlations_;
  ProfileBuilderOptions options_;
};

}  // namespace figdb::recsys
