#include "recsys/recommender.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "util/check.hpp"
#include "util/top_k.hpp"

namespace figdb::recsys {

FigRecommender::FigRecommender(
    const corpus::Corpus& corpus,
    std::shared_ptr<const core::PotentialEvaluator> exact,
    std::shared_ptr<const core::PotentialEvaluator> full,
    RecommenderOptions options)
    : corpus_(&corpus),
      exact_(std::move(exact)),
      full_(std::move(full)),
      options_(options) {
  FIGDB_CHECK(exact_ != nullptr && full_ != nullptr);
  FIGDB_CHECK(options_.decay > 0.0 && options_.decay <= 1.0);
}

double FigRecommender::ScoreWith(const core::PotentialEvaluator& potential,
                                 const UserProfile& profile,
                                 const corpus::MediaObject& obj,
                                 std::uint16_t current_month) const {
  double total = 0.0;
  core::Clique scratch;
  for (const ProfileClique& pc : profile.cliques) {
    // Occurrence weight: sum of decayed occurrence stamps (Eq. 10, summed
    // over the clique's appearances in Hu).
    double weight = 0.0;
    for (std::uint16_t month : pc.months) {
      const int age = int(current_month) - int(month);
      weight += std::pow(options_.decay, double(std::max(age, 0)));
    }
    if (weight <= 0.0) continue;
    scratch.features = pc.features;  // Phi needs a core::Clique view
    const double phi = potential.Phi(scratch, obj);
    if (phi > 0.0) total += weight * phi;
  }
  return total;
}

double FigRecommender::Score(const UserProfile& profile,
                             const corpus::MediaObject& obj,
                             std::uint16_t current_month) const {
  return ScoreWith(*full_, profile, obj, current_month);
}

double FigRecommender::ExactScore(const UserProfile& profile,
                                  const corpus::MediaObject& obj,
                                  std::uint16_t current_month) const {
  return ScoreWith(*exact_, profile, obj, current_month);
}

std::vector<FigRecommender::Explanation> FigRecommender::Explain(
    const UserProfile& profile, const corpus::MediaObject& obj,
    std::uint16_t current_month, std::size_t top_n) const {
  std::vector<Explanation> all;
  core::Clique scratch;
  for (const ProfileClique& pc : profile.cliques) {
    double weight = 0.0;
    for (std::uint16_t month : pc.months) {
      const int age = int(current_month) - int(month);
      weight += std::pow(options_.decay, double(std::max(age, 0)));
    }
    if (weight <= 0.0) continue;
    scratch.features = pc.features;
    const double phi = full_->Phi(scratch, obj);
    if (phi > 0.0) all.push_back({pc.features, weight * phi});
  }
  std::sort(all.begin(), all.end(),
            [](const Explanation& a, const Explanation& b) {
              return a.contribution > b.contribution;
            });
  if (all.size() > top_n) all.resize(top_n);
  return all;
}

std::vector<core::SearchResult> FigRecommender::Recommend(
    const UserProfile& profile,
    const std::vector<corpus::ObjectId>& candidates, std::size_t k,
    std::uint16_t current_month) const {
  if (options_.rerank_candidates == 0) {
    util::TopK<corpus::ObjectId> topk(k);
    for (corpus::ObjectId id : candidates)
      topk.Offer(Score(profile, corpus_->Object(id), current_month), id);
    std::vector<core::SearchResult> out;
    for (const auto& e : topk.Take()) out.push_back({e.id, e.score});
    return out;
  }

  // ---- Stage 1: containment matching through a feature -> clique map
  // (output-sensitive: only cliques touching a candidate's features are
  // visited), scored with the cheap frequency part of Eq. 10.
  const std::size_t n = profile.cliques.size();
  std::vector<double> static_weight(n);  // lambda * CorS * decayed count
  std::unordered_map<corpus::FeatureKey, std::vector<std::uint32_t>>
      cliques_of_feature;
  core::Clique scratch;
  for (std::size_t c = 0; c < n; ++c) {
    const ProfileClique& pc = profile.cliques[c];
    double decayed = 0.0;
    for (std::uint16_t month : pc.months) {
      const int age = int(current_month) - int(month);
      decayed += std::pow(options_.decay, double(std::max(age, 0)));
    }
    scratch.features = pc.features;
    static_weight[c] = decayed *
                       exact_->LambdaFor(pc.features.size()) *
                       exact_->CliqueWeight(scratch);
    if (static_weight[c] <= 0.0) continue;
    for (corpus::FeatureKey f : pc.features)
      cliques_of_feature[f].push_back(std::uint32_t(c));
  }

  std::vector<std::uint16_t> hit_count(n, 0);
  std::vector<std::uint32_t> touched;
  util::TopK<corpus::ObjectId> stage1(
      std::max(k, options_.rerank_candidates));
  for (corpus::ObjectId id : candidates) {
    const corpus::MediaObject& obj = corpus_->Object(id);
    touched.clear();
    for (const corpus::FeatureOccurrence& f : obj.features) {
      auto it = cliques_of_feature.find(f.feature);
      if (it == cliques_of_feature.end()) continue;
      for (std::uint32_t c : it->second) {
        if (hit_count[c]++ == 0) touched.push_back(c);
      }
    }
    double score = 0.0;
    const double total = double(obj.TotalFrequency());
    for (std::uint32_t c : touched) {
      const ProfileClique& pc = profile.cliques[c];
      if (hit_count[c] == pc.features.size() && total > 0.0) {
        std::uint32_t joint = std::numeric_limits<std::uint32_t>::max();
        for (corpus::FeatureKey f : pc.features)
          joint = std::min(joint, obj.FrequencyOf(f));
        score += static_weight[c] * double(joint) / total;
      }
      hit_count[c] = 0;
    }
    stage1.Offer(score, id);
  }

  // ---- Stage 2: full-model re-scoring of the survivors (Eq. 10 with the
  // smoothing component, partial singleton cliques included).
  util::TopK<corpus::ObjectId> topk(k);
  for (const auto& e : stage1.Take())
    topk.Offer(Score(profile, corpus_->Object(e.id), current_month), e.id);
  std::vector<core::SearchResult> out;
  for (const auto& e : topk.Take()) out.push_back({e.id, e.score});
  return out;
}

}  // namespace figdb::recsys
