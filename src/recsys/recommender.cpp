#include "recsys/recommender.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "temporal/decay.hpp"
#include "util/check.hpp"
#include "util/top_k.hpp"

namespace figdb::recsys {
namespace {

/// Sum of decayed occurrence stamps (Eq. 10, summed over the clique's
/// appearances in Hu). Routed through temporal::DecayWeight — the SAME
/// kernel the segmented store applies at merge time — so the fig10/fig11
/// `--segmented` cross-check compares like against like.
double DecayedOccurrenceWeight(double delta,
                               const std::vector<std::uint16_t>& months,
                               std::uint16_t current_month) {
  double weight = 0.0;
  for (std::uint16_t month : months)
    weight += temporal::DecayWeight(delta, int(current_month) - int(month));
  return weight;
}

}  // namespace

FigRecommender::FigRecommender(
    const corpus::Corpus& corpus,
    std::shared_ptr<const core::PotentialEvaluator> exact,
    std::shared_ptr<const core::PotentialEvaluator> full,
    RecommenderOptions options)
    : corpus_(&corpus),
      exact_(std::move(exact)),
      full_(std::move(full)),
      options_(options) {
  FIGDB_CHECK(exact_ != nullptr && full_ != nullptr);
  FIGDB_CHECK(options_.decay > 0.0 && options_.decay <= 1.0);
}

double FigRecommender::ScoreWith(const core::PotentialEvaluator& potential,
                                 const UserProfile& profile,
                                 const corpus::MediaObject& obj,
                                 std::uint16_t current_month) const {
  double total = 0.0;
  core::Clique scratch;
  for (const ProfileClique& pc : profile.cliques) {
    const double weight =
        DecayedOccurrenceWeight(options_.decay, pc.months, current_month);
    if (weight <= 0.0) continue;
    scratch.features = pc.features;  // Phi needs a core::Clique view
    const double phi = potential.Phi(scratch, obj);
    if (phi > 0.0) total += weight * phi;
  }
  return total;
}

double FigRecommender::Score(const UserProfile& profile,
                             const corpus::MediaObject& obj,
                             std::uint16_t current_month) const {
  return ScoreWith(*full_, profile, obj, current_month);
}

double FigRecommender::ExactScore(const UserProfile& profile,
                                  const corpus::MediaObject& obj,
                                  std::uint16_t current_month) const {
  return ScoreWith(*exact_, profile, obj, current_month);
}

std::vector<FigRecommender::Explanation> FigRecommender::Explain(
    const UserProfile& profile, const corpus::MediaObject& obj,
    std::uint16_t current_month, std::size_t top_n) const {
  std::vector<Explanation> all;
  core::Clique scratch;
  for (const ProfileClique& pc : profile.cliques) {
    const double weight =
        DecayedOccurrenceWeight(options_.decay, pc.months, current_month);
    if (weight <= 0.0) continue;
    scratch.features = pc.features;
    const double phi = full_->Phi(scratch, obj);
    if (phi > 0.0) all.push_back({pc.features, weight * phi});
  }
  std::sort(all.begin(), all.end(),
            [](const Explanation& a, const Explanation& b) {
              return a.contribution > b.contribution;
            });
  if (all.size() > top_n) all.resize(top_n);
  return all;
}

std::vector<core::SearchResult> FigRecommender::Recommend(
    const UserProfile& profile,
    const std::vector<corpus::ObjectId>& candidates, std::size_t k,
    std::uint16_t current_month) const {
  return RecommendWithBudget(profile, candidates, k, current_month,
                             /*budget=*/nullptr)
      .results;
}

util::StatusOr<core::SearchResponse> FigRecommender::TryRecommend(
    const UserProfile& profile,
    const std::vector<corpus::ObjectId>& candidates, std::size_t k,
    std::uint16_t current_month, const util::QueryBudget& budget) const {
  if (k == 0) return util::Status::InvalidArgument("k must be positive");
  for (corpus::ObjectId id : candidates) {
    if (id >= corpus_->Size())
      return util::Status::NotFound(
          "candidate object id " + std::to_string(id) +
          " past the corpus end (" + std::to_string(corpus_->Size()) +
          " objects)");
  }
  util::BudgetTracker tracker(budget);
  core::SearchResponse resp =
      RecommendWithBudget(profile, candidates, k, current_month,
                          budget.Unlimited() ? nullptr : &tracker);
  if (resp.results.empty() && tracker.Exhausted() && !candidates.empty())
    return util::Status::DeadlineExceeded(
        "recommendation budget exhausted before any candidate was scored");
  return resp;
}

core::SearchResponse FigRecommender::RecommendWithBudget(
    const UserProfile& profile,
    const std::vector<corpus::ObjectId>& candidates, std::size_t k,
    std::uint16_t current_month, util::BudgetTracker* budget) const {
  constexpr std::size_t kDeadlineStride = 8;
  core::SearchResponse resp;
  if (options_.rerank_candidates == 0) {
    // Single-stage mode: every candidate already gets the full model.
    resp.reranked = true;
    util::TopK<corpus::ObjectId> topk(k);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (budget != nullptr &&
          ((i % kDeadlineStride == 0 && budget->CheckDeadline()) ||
           !budget->ChargeScored())) {
        resp.truncated = true;
        break;
      }
      topk.Offer(Score(profile, corpus_->Object(candidates[i]),
                       current_month),
                 candidates[i]);
    }
    std::vector<core::SearchResult> out;
    for (const auto& e : topk.Take()) out.push_back({e.id, e.score});
    resp.results = std::move(out);
    if (budget != nullptr)
      resp.scored_candidates = budget->ScoredCandidates();
    return resp;
  }

  // ---- Stage 1: containment matching through a feature -> clique map
  // (output-sensitive: only cliques touching a candidate's features are
  // visited), scored with the cheap frequency part of Eq. 10.
  const std::size_t n = profile.cliques.size();
  std::vector<double> static_weight(n);  // lambda * CorS * decayed count
  std::unordered_map<corpus::FeatureKey, std::vector<std::uint32_t>>
      cliques_of_feature;
  core::Clique scratch;
  for (std::size_t c = 0; c < n; ++c) {
    const ProfileClique& pc = profile.cliques[c];
    const double decayed =
        DecayedOccurrenceWeight(options_.decay, pc.months, current_month);
    scratch.features = pc.features;
    static_weight[c] = decayed *
                       exact_->LambdaFor(pc.features.size()) *
                       exact_->CliqueWeight(scratch);
    if (static_weight[c] <= 0.0) continue;
    for (corpus::FeatureKey f : pc.features)
      cliques_of_feature[f].push_back(std::uint32_t(c));
  }

  std::vector<std::uint16_t> hit_count(n, 0);
  std::vector<std::uint32_t> touched;
  util::TopK<corpus::ObjectId> stage1(
      std::max(k, options_.rerank_candidates));
  for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
    const corpus::ObjectId id = candidates[ci];
    if (budget != nullptr &&
        ((ci % kDeadlineStride == 0 && budget->CheckDeadline()) ||
         !budget->ChargeScored())) {
      // Budget exhausted mid-stage-1: shed the unscored candidate tail.
      resp.truncated = true;
      break;
    }
    const corpus::MediaObject& obj = corpus_->Object(id);
    touched.clear();
    for (const corpus::FeatureOccurrence& f : obj.features) {
      auto it = cliques_of_feature.find(f.feature);
      if (it == cliques_of_feature.end()) continue;
      for (std::uint32_t c : it->second) {
        if (hit_count[c]++ == 0) touched.push_back(c);
      }
    }
    double score = 0.0;
    const double total = double(obj.TotalFrequency());
    for (std::uint32_t c : touched) {
      const ProfileClique& pc = profile.cliques[c];
      if (hit_count[c] == pc.features.size() && total > 0.0) {
        std::uint32_t joint = std::numeric_limits<std::uint32_t>::max();
        for (corpus::FeatureKey f : pc.features)
          joint = std::min(joint, obj.FrequencyOf(f));
        score += static_weight[c] * double(joint) / total;
      }
      hit_count[c] = 0;
    }
    stage1.Offer(score, id);
  }

  // ---- Stage 2: full-model re-scoring of the survivors (Eq. 10 with the
  // smoothing component, partial singleton cliques included). Under budget
  // pressure this stage is shed FIRST: the caller then gets stage-1
  // containment scores rather than fewer candidates.
  const auto survivors = stage1.Take();
  bool shed_rerank =
      budget != nullptr &&
      (budget->Exhausted() || budget->CheckDeadline() ||
       !budget->HasCandidateAllowance(survivors.size()));
  if (!shed_rerank) {
    util::TopK<corpus::ObjectId> topk(k);
    for (std::size_t i = 0; i < survivors.size(); ++i) {
      if (budget != nullptr) {
        if (i % kDeadlineStride == 0 && budget->CheckDeadline()) {
          // Mid-rerank expiry: shed the whole stage rather than mix
          // stage-1 and stage-2 scores in one ranking.
          shed_rerank = true;
          break;
        }
        budget->ChargeScored();
      }
      topk.Offer(Score(profile, corpus_->Object(survivors[i].id),
                       current_month),
                 survivors[i].id);
    }
    if (!shed_rerank) {
      resp.reranked = true;
      for (const auto& e : topk.Take())
        resp.results.push_back({e.id, e.score});
    }
  }
  if (shed_rerank) {
    resp.truncated = true;
    for (std::size_t i = 0; i < survivors.size() && i < k; ++i)
      resp.results.push_back({survivors[i].id, survivors[i].score});
  }
  if (budget != nullptr) resp.scored_candidates = budget->ScoredCandidates();
  return resp;
}

}  // namespace figdb::recsys
