#include "recsys/user_profile.hpp"

#include <unordered_map>

#include "core/fig.hpp"
#include "index/clique_key.hpp"
#include "util/check.hpp"

namespace figdb::recsys {

ProfileBuilder::ProfileBuilder(
    std::shared_ptr<const stats::CorrelationModel> correlations,
    ProfileBuilderOptions options)
    : correlations_(std::move(correlations)), options_(options) {
  FIGDB_CHECK(correlations_ != nullptr);
}

UserProfile ProfileBuilder::Build(
    const corpus::Corpus& corpus,
    const std::vector<corpus::ObjectId>& history) const {
  UserProfile profile;
  std::unordered_map<index::CliqueKey, std::size_t> by_key;

  for (corpus::ObjectId id : history) {
    const corpus::MediaObject& obj = corpus.Object(id);

    // Big-object feature union (frequencies summed), §4's Hu.
    for (const corpus::FeatureOccurrence& f : obj.features) {
      if (!core::MaskContains(options_.type_mask, corpus::TypeOf(f.feature)))
        continue;
      profile.merged.features.push_back(f);
    }
    profile.merged.month =
        std::max(profile.merged.month, obj.month);

    // Per-object FIG: the §4 constraint falls out naturally because edges
    // are only drawn inside one object's graph.
    const core::FeatureInteractionGraph fig =
        core::FeatureInteractionGraph::Build(obj, *correlations_,
                                             options_.type_mask);
    for (core::Clique& c :
         core::EnumerateCliques(fig, options_.cliques)) {
      const index::CliqueKey key = index::MakeCliqueKey(c.features);
      auto [it, inserted] = by_key.try_emplace(key, profile.cliques.size());
      if (inserted) {
        profile.cliques.push_back({std::move(c.features), {obj.month}});
      } else {
        profile.cliques[it->second].months.push_back(obj.month);
      }
    }
  }
  profile.merged.Normalize();
  return profile;
}

}  // namespace figdb::recsys
