#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/potential.hpp"
#include "core/retriever.hpp"
#include "corpus/corpus.hpp"
#include "recsys/user_profile.hpp"
#include "util/query_budget.hpp"
#include "util/status.hpp"

/// \file recommender.hpp
/// The FIG / FIG-T recommender of paper §4.
///
/// For a candidate object Or stamped with the current month tc, every
/// profile clique c (stamped ti) contributes
///
///   phi_rec(c) = lambda_|c| * delta^(tc - ti) * CorS(c) * P(c | Or)  (Eq.10)
///
/// summed over the clique's occurrences (so an interest favourited in
/// several months accumulates decayed evidence; with delta = 1 this reduces
/// to plain occurrence counting, i.e. the non-temporal FIG variant).

namespace figdb::recsys {

struct RecommenderOptions {
  /// Temporal decay delta in (0, 1]; 1 disables decay (plain FIG).
  double decay = 1.0;
  /// Two-stage scoring, mirroring the retrieval engine: all candidates are
  /// scored with the exact-containment potential first, and the best ones
  /// re-scored with the full Eq. 10 model (smoothing credits partial
  /// cliques). 0 = single-stage full-model scoring of every candidate.
  std::size_t rerank_candidates = 128;
};

class FigRecommender {
 public:
  /// Reuses the retrieval engine's potential evaluators (same lambda,
  /// alpha, CorS machinery); \p corpus must outlive the recommender.
  /// \p exact is the containment-gated stage-1 evaluator; \p full the
  /// smoothing-credited stage-2 evaluator (they may be the same object).
  FigRecommender(const corpus::Corpus& corpus,
                 std::shared_ptr<const core::PotentialEvaluator> exact,
                 std::shared_ptr<const core::PotentialEvaluator> full,
                 RecommenderOptions options);

  std::string Name() const {
    return options_.decay < 1.0 ? "FIG-T" : "FIG";
  }

  /// Ranks \p candidates for the profile; \p current_month is tc.
  std::vector<core::SearchResult> Recommend(
      const UserProfile& profile,
      const std::vector<corpus::ObjectId>& candidates, std::size_t k,
      std::uint16_t current_month) const;

  /// Validating, budget-aware Recommend, mirroring the retrieval engine's
  /// TrySearch contract:
  ///   kInvalidArgument   k = 0
  ///   kNotFound          a candidate id past the corpus end
  ///   kDeadlineExceeded  budget expired before any candidate was scored
  /// Under budget pressure the stage-2 full-model rerank is shed first
  /// (falling back to stage-1 containment scores), then the unscored
  /// candidate tail; partial answers come back tagged `truncated`.
  util::StatusOr<core::SearchResponse> TryRecommend(
      const UserProfile& profile,
      const std::vector<corpus::ObjectId>& candidates, std::size_t k,
      std::uint16_t current_month,
      const util::QueryBudget& budget = {}) const;

  /// Full-model score of a single candidate (exposed for tests/ablations).
  double Score(const UserProfile& profile, const corpus::MediaObject& obj,
               std::uint16_t current_month) const;

  /// Stage-1 (exact containment) score.
  double ExactScore(const UserProfile& profile,
                    const corpus::MediaObject& obj,
                    std::uint16_t current_month) const;

  /// One contributing clique of a recommendation.
  struct Explanation {
    std::vector<corpus::FeatureKey> features;
    double contribution;  // decayed weight * phi
  };

  /// The top contributing profile cliques for a (profile, candidate) pair —
  /// the "why was this recommended" view, sorted by contribution.
  std::vector<Explanation> Explain(const UserProfile& profile,
                                   const corpus::MediaObject& obj,
                                   std::uint16_t current_month,
                                   std::size_t top_n = 5) const;

  const RecommenderOptions& Options() const { return options_; }

 private:
  double ScoreWith(const core::PotentialEvaluator& potential,
                   const UserProfile& profile,
                   const corpus::MediaObject& obj,
                   std::uint16_t current_month) const;

  /// Shared Recommend core; Recommend runs it with a null budget, so the
  /// unbudgeted TryRecommend is identical to Recommend by construction.
  core::SearchResponse RecommendWithBudget(
      const UserProfile& profile,
      const std::vector<corpus::ObjectId>& candidates, std::size_t k,
      std::uint16_t current_month, util::BudgetTracker* budget) const;

  const corpus::Corpus* corpus_;
  std::shared_ptr<const core::PotentialEvaluator> exact_;
  std::shared_ptr<const core::PotentialEvaluator> full_;
  RecommenderOptions options_;
};

}  // namespace figdb::recsys
