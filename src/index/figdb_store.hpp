#pragma once

#include <memory>
#include <string>
#include <unordered_set>

#include "corpus/corpus.hpp"
#include "index/inverted_index.hpp"
#include "index/wal.hpp"
#include "stats/correlation.hpp"
#include "stats/feature_matrix.hpp"
#include "util/status.hpp"

/// \file figdb_store.hpp
/// Crash-safe live-ingestion store: corpus + clique index + durability.
///
/// The paper's Fig. 3 pipeline treats preprocessing as one-shot, but the
/// service we are growing ingests continuously. FigDbStore owns the corpus
/// and its CliqueIndex and keeps them durable through two artifacts in a
/// store directory:
///
///   <dir>/wal.figdb         write-ahead log (wal.hpp): every mutation is
///                           CRC-framed, appended and fsynced BEFORE it is
///                           applied in memory;
///   <dir>/checkpoint.figdb  the last checkpoint: the full corpus snapshot
///                           (storage.hpp format) plus the LSN of the last
///                           mutation folded in, written via write-temp →
///                           fsync → atomic-rename (util/atomic_file.hpp);
///                           the WAL is truncated only AFTER the rename
///                           lands.
///
/// Crash-atomicity invariant: after a crash at ANY instant, Recover()
/// returns a store whose logical state equals the state after some prefix
/// of the acknowledged mutations — each individual mutation is wholly
/// present or wholly absent, never half-applied. A torn final WAL record
/// (the append that was in flight) is a clean end-of-log; anything before
/// it replays exactly. Recovery rebuilds statistics and the clique index
/// from the recovered corpus, so a recovered store answers queries
/// bit-identically to an engine freshly built over the same logical corpus.
///
/// Removal keeps ids stable: the object's slot is tombstoned in place
/// (features cleared, topic invalidated) and its id is tombstoned in the
/// index's posting lists; ids are never reused. The correlation model is
/// pinned at Create/Recover time — the live index invariant is
///   store.Index() == CliqueIndex::Build(store.GetCorpus(),
///                                       *store.Correlations(), options)
/// which the robustness suite asserts posting-for-posting.
///
/// Fail-points on the write path (see wal.hpp for the WAL's own):
///   checkpoint/write_io   short write into checkpoint.figdb.tmp
///   checkpoint/fsync      temp-file fsync failure
///   checkpoint/rename     rename(tmp, checkpoint) failure
///   wal/truncate          post-rename WAL truncation failure

namespace figdb::index {

inline constexpr std::uint32_t kCheckpointMagic = 0xf19dbc01;
inline constexpr std::uint32_t kCheckpointVersion = 1;

class FigDbStore {
 public:
  struct Options {
    CliqueIndexOptions index;
    stats::CorrelationOptions correlations;
  };

  /// What Recover found on disk — surfaced by the shell's `recover`.
  struct RecoveryInfo {
    std::uint64_t checkpoint_lsn = 0;   ///< last LSN inside the checkpoint
    std::uint64_t replayed_records = 0; ///< WAL records applied on top
    std::uint64_t skipped_records = 0;  ///< WAL records <= checkpoint LSN
    bool torn_tail = false;             ///< final WAL record was torn
    std::uint64_t torn_bytes = 0;       ///< torn-tail bytes truncated away
  };

  /// Initialises \p dir (created if missing) with an empty WAL and a
  /// checkpoint of \p base, then returns the live store. Fails with
  /// kFailedPrecondition if \p dir already holds a store.
  static util::StatusOr<FigDbStore> Create(const std::string& dir,
                                           const corpus::Corpus& base,
                                           Options options = {});

  /// Loads the last good checkpoint and replays the WAL tail. See the
  /// crash-atomicity invariant above; `Info()` reports what was found.
  static util::StatusOr<FigDbStore> Recover(const std::string& dir,
                                            Options options = {});

  /// Logs then applies one AddObject. The object must be normalized,
  /// non-empty, and every feature must exist in the store's context
  /// (kInvalidArgument otherwise); its id is assigned by the store.
  /// On a durability failure the store is wounded: the in-memory state no
  /// longer provably matches the disk, so further mutations are refused
  /// with kFailedPrecondition until Recover() is run on the directory.
  util::StatusOr<corpus::ObjectId> Ingest(corpus::MediaObject object);

  /// Logs then applies one RemoveObject. kNotFound for ids past the end or
  /// already removed. Same wounding contract as Ingest.
  util::Status Remove(corpus::ObjectId id);

  /// Compacts the index, atomically replaces the checkpoint, then truncates
  /// the WAL. A failure before the rename aborts cleanly (old checkpoint +
  /// full WAL still cover every mutation); a truncation failure after the
  /// rename leaves a stale WAL whose records recovery skips by LSN.
  util::Status Checkpoint();

  const corpus::Corpus& GetCorpus() const { return corpus_; }
  const CliqueIndex& Index() const { return index_; }
  /// Writer-side mutable index access (serving-path eager compaction).
  CliqueIndex& MutableIndex() { return index_; }
  std::shared_ptr<const stats::CorrelationModel> Correlations() const {
    return correlations_;
  }
  /// The pinned feature statistics backing Correlations() — shared with
  /// serving snapshots so epoch publication never rebuilds them.
  std::shared_ptr<const stats::FeatureMatrix> Matrix() const {
    return matrix_;
  }
  const Options& GetOptions() const { return options_; }
  const RecoveryInfo& Info() const { return recovery_; }

  /// Objects present and not removed.
  std::size_t LiveObjects() const { return corpus_.Size() - removed_.size(); }
  std::size_t RemovedObjects() const { return removed_.size(); }
  bool IsRemoved(corpus::ObjectId id) const { return removed_.count(id); }

  std::uint64_t WalRecords() const { return wal_.RecordsAppended(); }
  std::uint64_t WalBytes() const { return wal_.SizeBytes(); }
  /// LSN of the last applied mutation (0 = none since the store was born).
  std::uint64_t LastLsn() const { return next_lsn_ - 1; }
  std::uint64_t CheckpointLsn() const { return checkpoint_lsn_; }

  /// True after a durability failure: mutations are refused, reads still
  /// serve the last consistent in-memory state.
  bool Wounded() const { return wounded_; }

  static std::string CheckpointPath(const std::string& dir);
  static std::string WalPath(const std::string& dir);

 private:
  FigDbStore() = default;

  /// Builds matrix, correlations and index from the current corpus.
  void RebuildDerivedState();
  /// Validates an ingest candidate against the store context.
  util::Status ValidateIngest(const corpus::MediaObject& object) const;
  /// Applies a logged mutation to corpus + index (shared by the live write
  /// path and WAL replay). \p replay relaxes nothing — it only changes the
  /// error wording.
  util::Status Apply(const WalRecord& record, bool replay);
  /// Serialises checkpoint metadata + corpus and writes it atomically.
  util::Status WriteCheckpoint(std::uint64_t applied_lsn) const;

  std::string dir_;
  Options options_;
  corpus::Corpus corpus_;
  std::shared_ptr<const stats::FeatureMatrix> matrix_;
  std::shared_ptr<const stats::CorrelationModel> correlations_;
  CliqueIndex index_;
  WriteAheadLog wal_;
  std::unordered_set<corpus::ObjectId> removed_;
  std::uint64_t next_lsn_ = 1;
  std::uint64_t checkpoint_lsn_ = 0;
  RecoveryInfo recovery_;
  bool wounded_ = false;
};

}  // namespace figdb::index
