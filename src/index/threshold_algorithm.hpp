#pragma once

#include <vector>

#include "core/retriever.hpp"
#include "util/query_budget.hpp"

/// \file threshold_algorithm.hpp
/// Top-k merge of per-clique candidate lists (Algorithm 1, line 13).
///
/// Each query clique produces a list of (object, phi') pairs. The final
/// score of an object is the SUM of its per-list scores (Eq. 6), so the
/// merge is a monotone top-k aggregation — exactly the setting of Fagin,
/// Lotem & Naor's Threshold Algorithm [7], which the paper adopts.
///
/// ThresholdMerge performs sorted access in parallel over all lists and
/// random access through per-list hash maps, stopping as soon as the
/// k-th best aggregated score reaches the threshold (the sum of the current
/// sorted-access frontier). ExhaustiveMerge is the non-early-terminating
/// reference; both return identical results (asserted in tests).

namespace figdb::index {

/// One per-clique scored candidate list. Entries need not be pre-sorted;
/// the merge sorts them (paper Algorithm 1 line 11).
struct ScoredList {
  std::vector<core::SearchResult> entries;
};

/// Fagin TA with early termination. Ties broken towards smaller object id.
///
/// When \p budget is non-null the merge degrades gracefully under pressure:
/// every candidate admitted via random access charges one scoring unit, the
/// wall-clock deadline is polled once per sorted-access depth, and on
/// exhaustion the loop stops and returns best-so-far (setting *truncated).
/// Returned scores are always EXACT full aggregates (random access sums the
/// object across all lists), so truncation sheds candidates, never corrupts
/// scores. The `ta/deadline` fail-point injects deadline expiry at the top
/// of the depth loop for deterministic fault testing.
///
/// When \p stop_bound is non-null it receives an upper bound on the exact
/// aggregate score of every object NOT in the returned vector — the TA
/// certificate the sharded scatter-gather merge uses: a router can prove a
/// globally exact top-k from per-shard top-k lists because nothing a shard
/// withheld can beat max(per-shard bounds). The bound is
///   max(frontier threshold at early termination, displaced k-th score)
/// (0 for a fully drained underfull merge), and +infinity when the merge
/// was truncated by the budget — a truncated shard cannot certify anything.
std::vector<core::SearchResult> ThresholdMerge(
    std::vector<ScoredList> lists, std::size_t k,
    util::BudgetTracker* budget = nullptr, bool* truncated = nullptr,
    double* stop_bound = nullptr);

/// Hash-aggregation over all entries (reference implementation). Always
/// aggregates fully (exact scores); a candidate budget caps how many
/// distinct objects are offered to the top-k, in deterministic
/// first-encounter order (list order, then entry order).
/// \p stop_bound has ThresholdMerge's semantics (here every object was
/// aggregated, so the bound is the displaced k-th score — or +infinity
/// when the candidate budget truncated the offer loop).
std::vector<core::SearchResult> ExhaustiveMerge(
    const std::vector<ScoredList>& lists, std::size_t k,
    util::BudgetTracker* budget = nullptr, bool* truncated = nullptr,
    double* stop_bound = nullptr);

/// Fagin's No-Random-Access (NRA) variant: sorted access only, maintaining
/// per-object [lower, upper] score bounds, terminating when the k-th lower
/// bound dominates every other object's upper bound. Returns the correct
/// top-k SET; the reported scores are the exact sums of the accesses made
/// (lower bounds), so the within-set order may differ from the true order.
/// Useful when random access is expensive (e.g. disk-resident postings).
std::vector<core::SearchResult> NraMerge(std::vector<ScoredList> lists,
                                         std::size_t k);

}  // namespace figdb::index
