#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "corpus/media_object.hpp"
#include "util/status.hpp"

/// \file wal.hpp
/// Append-only, CRC32-framed write-ahead log for live ingestion.
///
/// Every mutation (AddObject / RemoveObject) is logged BEFORE it is applied
/// to the in-memory store, so a crash at any instant loses at most the
/// mutation whose append was in flight — never the database. The file is
///
///   header  = fixed32 magic, fixed32 version
///   record* = fixed32 payload_size, fixed32 crc32(payload), payload
///   payload = varint lsn, u8 record type, varint object id,
///             [kAddObject: serialized MediaObject (storage.hpp serde)]
///
/// Fixed-width framing makes torn tails unambiguous: an append that died
/// mid-write leaves either an incomplete frame or a final frame whose CRC
/// does not match. Replay treats exactly that — a damaged FINAL record — as
/// a clean end-of-log (`torn_tail` in the result); a damaged record with
/// more log after it cannot be a torn append and is reported as kDataLoss.
/// Everything before the damage replays exactly.
///
/// LSNs are assigned by the store, strictly increasing across the store's
/// whole life (they survive checkpoints), which makes replay idempotent: a
/// checkpoint records the last LSN folded into it, and recovery skips WAL
/// records at or below it — the crash-between-rename-and-truncate window
/// double-applies nothing.
///
/// Fail-points (util/failpoint.hpp):
///   wal/append_io  append fails before any byte reaches the file
///   wal/torn_tail  append writes a partial frame then "crashes"
///   wal/fsync      the frame is fully written but the fsync fails
///   wal/truncate   post-checkpoint truncation fails before doing anything

namespace figdb::index {

inline constexpr std::uint32_t kWalMagic = 0xf19dba17;
inline constexpr std::uint32_t kWalVersion = 1;

struct WalRecord {
  enum class Type : std::uint8_t { kAddObject = 1, kRemoveObject = 2 };

  std::uint64_t lsn = 0;
  Type type = Type::kAddObject;
  /// For kAddObject: the id the store will assign (validated on replay).
  /// For kRemoveObject: the id being removed.
  corpus::ObjectId object_id = corpus::kInvalidObject;
  /// Payload for kAddObject; ignored for kRemoveObject.
  corpus::MediaObject object;
};

class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog() { Close(); }
  WriteAheadLog(WriteAheadLog&& other) noexcept { *this = std::move(other); }
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens \p path for appending, creating an empty (header-only) log if it
  /// does not exist. An existing file must carry a valid header.
  static util::StatusOr<WriteAheadLog> Open(const std::string& path);

  /// Frames, writes and fsyncs one record. On failure the in-memory store
  /// must treat the mutation as not applied; the on-disk tail may be torn
  /// (replay handles it).
  util::Status Append(const WalRecord& record);

  /// Truncates the log back to header-only — called after a checkpoint
  /// rename lands, making the logged mutations redundant.
  util::Status Reset();

  bool IsOpen() const { return file_ != nullptr; }
  const std::string& Path() const { return path_; }
  /// Records in the log: those appended through this handle, plus any a
  /// caller seeded via NoteExistingRecords after replaying the file.
  std::uint64_t RecordsAppended() const { return appended_; }
  /// Seeds the record counter after a Replay-then-Open sequence, so
  /// RecordsAppended reflects the records already on disk rather than
  /// resetting to zero across a recovery.
  void NoteExistingRecords(std::uint64_t n) { appended_ = n; }
  std::uint64_t SizeBytes() const { return size_bytes_; }

  struct ReplayResult {
    std::vector<WalRecord> records;
    /// The final record was torn (incomplete frame or CRC-damaged tail);
    /// the log ended cleanly at `valid_bytes`.
    bool torn_tail = false;
    /// Byte length of the prefix that parsed cleanly (header + whole
    /// records). Recovery truncates a torn file back to this length before
    /// appending again, so fresh records never land after garbage.
    std::uint64_t valid_bytes = 0;
    /// Bytes of torn tail discarded past valid_bytes (0 unless torn_tail).
    /// Surfaced by the shell's `recover` so operators can tell a routine
    /// torn-tail truncation (this many bytes, one in-flight append) from
    /// mid-log corruption, which is never silently dropped — it fails
    /// replay with kDataLoss instead.
    std::uint64_t dropped_bytes = 0;
  };

  /// Reads and validates the whole log.
  ///   kNotFound         the file does not exist
  ///   kInvalidArgument  not a figdb WAL / unsupported version
  ///   kDataLoss         mid-log corruption, malformed payload inside a
  ///                     CRC-valid record, or non-increasing LSNs
  static util::StatusOr<ReplayResult> Replay(const std::string& path);

  /// The parsing core of Replay over an in-memory image of the log file —
  /// the single untrusted-bytes entry point that the file path, the in-tree
  /// WAL fuzz loop, and the fuzz_wal libFuzzer target all share. \p label
  /// (e.g. "'/path/to/wal'") prefixes error messages so file-based callers
  /// keep their path diagnostics. Same status taxonomy as Replay minus
  /// kNotFound.
  static util::StatusOr<ReplayResult> ReplayBytes(std::string_view bytes,
                                                  const std::string& label);

  /// Truncates \p path to \p bytes (drops a torn tail found by Replay).
  static util::Status TruncateTail(const std::string& path,
                                   std::uint64_t bytes);

 private:
  void Close();

  std::FILE* file_ = nullptr;
  std::string path_;
  std::uint64_t appended_ = 0;
  std::uint64_t size_bytes_ = 0;
};

}  // namespace figdb::index
