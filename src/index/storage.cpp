#include "index/storage.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/failpoint.hpp"
#include "util/serde.hpp"
#include "vision/block_features.hpp"

namespace figdb::index {
namespace {

using util::BinaryReader;
using util::BinaryWriter;
using util::Status;
using util::StatusOr;

Status Corrupt(const char* section, const std::string& why) {
  return Status::DataLoss(std::string(section) + " section: " + why);
}

void WriteVocabulary(const text::Vocabulary& vocab, BinaryWriter* w) {
  w->PutVarint(vocab.Size());
  for (std::size_t id = 0; id < vocab.Size(); ++id) {
    w->PutString(vocab.TermOf(text::TermId(id)));
    w->PutVarint(vocab.Frequency(text::TermId(id)));
  }
}

Status ReadVocabulary(BinaryReader* r, text::Vocabulary* vocab) {
  const std::uint64_t n = r->GetVarint();
  for (std::uint64_t i = 0; i < n && r->Ok(); ++i) {
    const std::string term = r->GetString();
    const std::uint32_t freq = std::uint32_t(r->GetVarint());
    if (!r->Ok()) break;
    // Ids are assigned sequentially, so insertion order restores them.
    if (vocab->AddOccurrence(term, freq) != text::TermId(i))
      return Corrupt("vocabulary",
                     "duplicate term at entry " + std::to_string(i));
  }
  if (!r->Ok()) return Corrupt("vocabulary", "truncated entry");
  return Status::Ok();
}

void WriteTaxonomy(const text::Taxonomy& tax, BinaryWriter* w) {
  w->PutVarint(tax.NodeCount());
  for (std::size_t n = 0; n < tax.NodeCount(); ++n) {
    // The root stores itself as parent to keep everything unsigned.
    const text::NodeId parent = n == 0 ? 0 : tax.Parent(text::NodeId(n));
    w->PutVarint(parent);
    w->PutString(tax.Name(text::NodeId(n)));
  }
  // Sorted by term id: the snapshot must be a pure function of the logical
  // taxonomy, not of hash-map iteration order, so that equal corpora always
  // serialize to equal bytes (the crash-recovery suite compares states
  // byte-for-byte, and reproducible snapshots diff cleanly).
  std::vector<std::pair<std::uint32_t, text::NodeId>> terms(
      tax.TermNodes().begin(), tax.TermNodes().end());
  std::sort(terms.begin(), terms.end());
  w->PutVarint(terms.size());
  for (const auto& [term, node] : terms) {
    w->PutVarint(term);
    w->PutVarint(node);
  }
}

Status ReadTaxonomy(BinaryReader* r, text::Taxonomy* tax) {
  const std::uint64_t nodes = r->GetVarint();
  for (std::uint64_t n = 0; n < nodes && r->Ok(); ++n) {
    const text::NodeId parent = text::NodeId(r->GetVarint());
    std::string name = r->GetString();
    if (!r->Ok()) break;
    if (n == 0) {
      tax->AddRoot(std::move(name));
    } else {
      if (parent >= n)  // children always follow parents
        return Corrupt("taxonomy", "dangling parent id " +
                                       std::to_string(parent) + " at node " +
                                       std::to_string(n));
      tax->AddChild(parent, std::move(name));
    }
  }
  if (!r->Ok()) return Corrupt("taxonomy", "truncated node list");
  const std::uint64_t terms = r->GetVarint();
  for (std::uint64_t i = 0; i < terms && r->Ok(); ++i) {
    const std::uint32_t term = std::uint32_t(r->GetVarint());
    const text::NodeId node = text::NodeId(r->GetVarint());
    if (!r->Ok()) break;
    if (node >= tax->NodeCount())
      return Corrupt("taxonomy",
                     "term attached to dangling node " + std::to_string(node));
    tax->AttachTerm(term, node);
  }
  if (!r->Ok()) return Corrupt("taxonomy", "truncated term map");
  return Status::Ok();
}

void WriteVisualVocabulary(const vision::VisualVocabulary& vocab,
                           BinaryWriter* w) {
  w->PutVarint(vocab.WordCount());
  for (std::size_t c = 0; c < vocab.WordCount(); ++c)
    for (float x : vocab.Centroid(vision::VisualWordId(c))) w->PutFloat(x);
}

Status ReadVisualVocabulary(BinaryReader* r,
                            vision::VisualVocabulary* vocab) {
  const std::uint64_t n = r->GetVarint();
  // Centroids are fixed-size float blocks; bound the claim before reserving.
  if (!r->Ok() || n > r->Remaining())
    return Corrupt("visual vocabulary", "implausible centroid count");
  std::vector<vision::Descriptor> centroids;
  centroids.reserve(std::size_t(n));
  for (std::uint64_t c = 0; c < n && r->Ok(); ++c) {
    vision::Descriptor d{};
    for (auto& x : d) x = r->GetFloat();
    centroids.push_back(d);
  }
  if (!r->Ok()) return Corrupt("visual vocabulary", "truncated centroids");
  *vocab = vision::VisualVocabulary::FromCentroids(std::move(centroids));
  return Status::Ok();
}

void WriteUserGraph(const social::UserGraph& graph, BinaryWriter* w) {
  w->PutVarint(graph.UserCount());
  w->PutVarint(graph.GroupCount());
  for (std::size_t u = 0; u < graph.UserCount(); ++u)
    w->PutSortedIds(graph.GroupsOf(social::UserId(u)));
}

Status ReadUserGraph(BinaryReader* r, social::UserGraph* graph) {
  const std::uint64_t users = r->GetVarint();
  const std::uint64_t groups = r->GetVarint();
  // Every user costs at least one membership-count byte.
  if (!r->Ok() || users > r->Remaining())
    return Corrupt("user graph", "implausible user count");
  for (std::uint64_t u = 0; u < users; ++u) graph->AddUser();
  for (std::uint64_t g = 0; g < groups; ++g) graph->AddGroup();
  for (std::uint64_t u = 0; u < users && r->Ok(); ++u) {
    for (std::uint32_t g : r->GetSortedIds()) {
      if (g >= groups)
        return Corrupt("user graph", "membership in dangling group " +
                                         std::to_string(g));
      graph->AddMembership(social::UserId(u), social::GroupId(g));
    }
  }
  if (!r->Ok()) return Corrupt("user graph", "truncated membership lists");
  return Status::Ok();
}

// ------------------------------------------------------- section framing
//
// Each section is written as: varint payload size, fixed32 CRC32 of the
// payload, payload bytes. The reader validates length then checksum before
// handing the payload to the section parser, so corruption is attributed to
// a named section with a truncation-vs-bit-rot distinction.

void WriteSection(const BinaryWriter& payload, BinaryWriter* out) {
  const std::string& bytes = payload.Buffer();
  out->PutVarint(bytes.size());
  out->PutFixed32(util::Crc32(bytes));
  out->PutRaw(bytes);
}

/// Opens the next section: length + CRC checks, then returns a reader over
/// exactly the payload bytes via \p section_reader.
Status OpenSection(const char* name, BinaryReader* r,
                   std::string_view* payload) {
  const std::uint64_t size = r->GetVarint();
  const std::uint32_t stored_crc = r->GetFixed32();
  if (!r->Ok() || size > r->Remaining() ||
      FIGDB_FAILPOINT("storage/section_truncated"))
    return Corrupt(name, "truncated (snapshot ends mid-section)");
  *payload = r->GetRaw(size);
  const std::uint32_t computed_crc = util::Crc32(*payload);
  if (computed_crc != stored_crc || FIGDB_FAILPOINT("storage/section_crc")) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "CRC mismatch (stored %08x, computed %08x)", stored_crc,
                  computed_crc);
    return Corrupt(name, buf);
  }
  return Status::Ok();
}

/// Runs \p parse on the named section's payload and insists the parser
/// consumed every byte (trailing garbage inside a checksummed section means
/// a writer/reader version skew, which must not pass silently).
template <typename ParseFn>
Status ReadSection(const char* name, BinaryReader* r, ParseFn&& parse) {
  std::string_view payload;
  FIGDB_RETURN_IF_ERROR(OpenSection(name, r, &payload));
  BinaryReader section(payload);
  FIGDB_RETURN_IF_ERROR(parse(&section));
  if (!section.Ok()) return Corrupt(name, "malformed payload");
  if (!section.AtEnd()) return Corrupt(name, "trailing bytes in section");
  return Status::Ok();
}

}  // namespace

void WriteMediaObject(const corpus::MediaObject& obj, BinaryWriter* w) {
  w->PutVarint(obj.month);
  w->PutVarint(obj.topic);
  w->PutVarint(obj.features.size());
  corpus::FeatureKey prev = 0;
  for (const corpus::FeatureOccurrence& f : obj.features) {
    w->PutVarint(f.feature - prev);  // features are sorted; delta-encode
    prev = f.feature;
    w->PutVarint(f.frequency);
  }
}

Status ReadMediaObject(BinaryReader* r, corpus::MediaObject* obj,
                       std::uint64_t label) {
  obj->month = std::uint16_t(r->GetVarint());
  obj->topic = std::uint32_t(r->GetVarint());
  const std::uint64_t n = r->GetVarint();
  // Each feature occurrence costs at least two encoded bytes.
  if (!r->Ok() || n > r->Remaining())
    return Corrupt("objects", "implausible feature count in object " +
                                  std::to_string(label));
  obj->features.reserve(std::size_t(n));
  corpus::FeatureKey prev = 0;
  for (std::uint64_t i = 0; i < n && r->Ok(); ++i) {
    prev += corpus::FeatureKey(r->GetVarint());
    const std::uint32_t freq = std::uint32_t(r->GetVarint());
    if (freq == 0)
      return Corrupt("objects", "zero-frequency feature in object " +
                                    std::to_string(label));
    obj->features.push_back({prev, freq});
  }
  if (!r->Ok())
    return Corrupt("objects", "truncated object " + std::to_string(label));
  return Status::Ok();
}

Status ReadTaxonomySection(BinaryReader* r, text::Taxonomy* tax) {
  return ReadTaxonomy(r, tax);
}

std::string SerializeCorpus(const corpus::Corpus& corpus) {
  BinaryWriter w;
  w.PutVarint(kSnapshotMagic);
  w.PutVarint(kSnapshotVersion);
  const corpus::Context& ctx = corpus.GetContext();
  {
    BinaryWriter meta;
    meta.PutVarint(ctx.num_topics);
    WriteSection(meta, &w);
  }
  {
    BinaryWriter s;
    WriteVocabulary(ctx.vocabulary, &s);
    WriteSection(s, &w);
  }
  {
    BinaryWriter s;
    WriteTaxonomy(ctx.taxonomy, &s);
    WriteSection(s, &w);
  }
  {
    BinaryWriter s;
    WriteVisualVocabulary(ctx.visual_vocabulary, &s);
    WriteSection(s, &w);
  }
  {
    BinaryWriter s;
    WriteUserGraph(ctx.user_graph, &s);
    WriteSection(s, &w);
  }
  {
    BinaryWriter s;
    s.PutVarint(corpus.Size());
    for (const corpus::MediaObject& obj : corpus.Objects())
      WriteMediaObject(obj, &s);
    WriteSection(s, &w);
  }
  return w.Take();
}

StatusOr<corpus::Corpus> DeserializeCorpus(std::string_view bytes) {
  BinaryReader r(bytes);
  const std::uint64_t magic = r.GetVarint();
  if (!r.Ok() || magic != kSnapshotMagic)
    return Status::InvalidArgument("not a figdb snapshot (bad magic)");
  const std::uint64_t version = r.GetVarint();
  if (!r.Ok() || version != kSnapshotVersion)
    return Status::InvalidArgument(
        "unsupported snapshot version " + std::to_string(version) +
        " (expected " + std::to_string(kSnapshotVersion) + ")");

  corpus::Corpus out;
  corpus::Context& ctx = out.MutableContext();
  FIGDB_RETURN_IF_ERROR(ReadSection("meta", &r, [&](BinaryReader* s) {
    ctx.num_topics = std::size_t(s->GetVarint());
    return Status::Ok();
  }));
  FIGDB_RETURN_IF_ERROR(ReadSection("vocabulary", &r, [&](BinaryReader* s) {
    return ReadVocabulary(s, &ctx.vocabulary);
  }));
  FIGDB_RETURN_IF_ERROR(ReadSection("taxonomy", &r, [&](BinaryReader* s) {
    return ReadTaxonomy(s, &ctx.taxonomy);
  }));
  FIGDB_RETURN_IF_ERROR(
      ReadSection("visual vocabulary", &r, [&](BinaryReader* s) {
        return ReadVisualVocabulary(s, &ctx.visual_vocabulary);
      }));
  FIGDB_RETURN_IF_ERROR(ReadSection("user graph", &r, [&](BinaryReader* s) {
    return ReadUserGraph(s, &ctx.user_graph);
  }));
  FIGDB_RETURN_IF_ERROR(ReadSection("objects", &r, [&](BinaryReader* s) {
    const std::uint64_t objects = s->GetVarint();
    if (!s->Ok() || objects > s->Remaining())
      return Corrupt("objects", "implausible object count");
    for (std::uint64_t i = 0; i < objects; ++i) {
      corpus::MediaObject obj;
      FIGDB_RETURN_IF_ERROR(ReadMediaObject(s, &obj, i));
      out.Add(std::move(obj));
    }
    return Status::Ok();
  }));
  if (!r.AtEnd())
    return Status::DataLoss("trailing bytes after the last section");
  return out;
}

Status SaveCorpus(const corpus::Corpus& corpus, const std::string& path) {
  // Temp-file + fsync + atomic-rename: a crash mid-save leaves the previous
  // snapshot at `path` intact (the temp file is the only casualty).
  return util::AtomicWriteFile(path, SerializeCorpus(corpus),
                               {.write_io = "storage/save_io",
                                .fsync = "storage/save_fsync",
                                .rename = "storage/save_rename"});
}

StatusOr<corpus::Corpus> LoadCorpus(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    return Status::NotFound("cannot open '" + path + "' for reading");
  std::string bytes;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  const bool read_error =
      std::ferror(f) != 0 || FIGDB_FAILPOINT("storage/load_io");
  std::fclose(f);
  if (read_error)
    return Status::Unavailable("read error on '" + path + "'");
  return DeserializeCorpus(bytes);
}

}  // namespace figdb::index
