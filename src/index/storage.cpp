#include "index/storage.hpp"

#include <cstdio>

#include "util/serde.hpp"
#include "vision/block_features.hpp"

namespace figdb::index {
namespace {

using util::BinaryReader;
using util::BinaryWriter;

void WriteVocabulary(const text::Vocabulary& vocab, BinaryWriter* w) {
  w->PutVarint(vocab.Size());
  for (std::size_t id = 0; id < vocab.Size(); ++id) {
    w->PutString(vocab.TermOf(text::TermId(id)));
    w->PutVarint(vocab.Frequency(text::TermId(id)));
  }
}

bool ReadVocabulary(BinaryReader* r, text::Vocabulary* vocab) {
  const std::uint64_t n = r->GetVarint();
  for (std::uint64_t i = 0; i < n && r->Ok(); ++i) {
    const std::string term = r->GetString();
    const std::uint32_t freq = std::uint32_t(r->GetVarint());
    if (!r->Ok()) return false;
    // Ids are assigned sequentially, so insertion order restores them.
    if (vocab->AddOccurrence(term, freq) != text::TermId(i)) return false;
  }
  return r->Ok();
}

void WriteTaxonomy(const text::Taxonomy& tax, BinaryWriter* w) {
  w->PutVarint(tax.NodeCount());
  for (std::size_t n = 0; n < tax.NodeCount(); ++n) {
    // The root stores itself as parent to keep everything unsigned.
    const text::NodeId parent = n == 0 ? 0 : tax.Parent(text::NodeId(n));
    w->PutVarint(parent);
    w->PutString(tax.Name(text::NodeId(n)));
  }
  w->PutVarint(tax.TermNodes().size());
  for (const auto& [term, node] : tax.TermNodes()) {
    w->PutVarint(term);
    w->PutVarint(node);
  }
}

bool ReadTaxonomy(BinaryReader* r, text::Taxonomy* tax) {
  const std::uint64_t nodes = r->GetVarint();
  for (std::uint64_t n = 0; n < nodes && r->Ok(); ++n) {
    const text::NodeId parent = text::NodeId(r->GetVarint());
    std::string name = r->GetString();
    if (!r->Ok()) return false;
    if (n == 0) {
      tax->AddRoot(std::move(name));
    } else {
      if (parent >= n) return false;  // children always follow parents
      tax->AddChild(parent, std::move(name));
    }
  }
  const std::uint64_t terms = r->GetVarint();
  for (std::uint64_t i = 0; i < terms && r->Ok(); ++i) {
    const std::uint32_t term = std::uint32_t(r->GetVarint());
    const text::NodeId node = text::NodeId(r->GetVarint());
    if (!r->Ok() || node >= tax->NodeCount()) return false;
    tax->AttachTerm(term, node);
  }
  return r->Ok();
}

void WriteVisualVocabulary(const vision::VisualVocabulary& vocab,
                           BinaryWriter* w) {
  w->PutVarint(vocab.WordCount());
  for (std::size_t c = 0; c < vocab.WordCount(); ++c)
    for (float x : vocab.Centroid(vision::VisualWordId(c))) w->PutFloat(x);
}

bool ReadVisualVocabulary(BinaryReader* r,
                          vision::VisualVocabulary* vocab) {
  const std::uint64_t n = r->GetVarint();
  std::vector<vision::Descriptor> centroids;
  centroids.reserve(n);
  for (std::uint64_t c = 0; c < n && r->Ok(); ++c) {
    vision::Descriptor d{};
    for (auto& x : d) x = r->GetFloat();
    centroids.push_back(d);
  }
  if (!r->Ok()) return false;
  *vocab = vision::VisualVocabulary::FromCentroids(std::move(centroids));
  return true;
}

void WriteUserGraph(const social::UserGraph& graph, BinaryWriter* w) {
  w->PutVarint(graph.UserCount());
  w->PutVarint(graph.GroupCount());
  for (std::size_t u = 0; u < graph.UserCount(); ++u)
    w->PutSortedIds(graph.GroupsOf(social::UserId(u)));
}

bool ReadUserGraph(BinaryReader* r, social::UserGraph* graph) {
  const std::uint64_t users = r->GetVarint();
  const std::uint64_t groups = r->GetVarint();
  if (!r->Ok()) return false;
  for (std::uint64_t u = 0; u < users; ++u) graph->AddUser();
  for (std::uint64_t g = 0; g < groups; ++g) graph->AddGroup();
  for (std::uint64_t u = 0; u < users && r->Ok(); ++u) {
    for (std::uint32_t g : r->GetSortedIds()) {
      if (g >= groups) return false;
      graph->AddMembership(social::UserId(u), social::GroupId(g));
    }
  }
  return r->Ok();
}

void WriteObject(const corpus::MediaObject& obj, BinaryWriter* w) {
  w->PutVarint(obj.month);
  w->PutVarint(obj.topic);
  w->PutVarint(obj.features.size());
  corpus::FeatureKey prev = 0;
  for (const corpus::FeatureOccurrence& f : obj.features) {
    w->PutVarint(f.feature - prev);  // features are sorted; delta-encode
    prev = f.feature;
    w->PutVarint(f.frequency);
  }
}

bool ReadObject(BinaryReader* r, corpus::MediaObject* obj) {
  obj->month = std::uint16_t(r->GetVarint());
  obj->topic = std::uint32_t(r->GetVarint());
  const std::uint64_t n = r->GetVarint();
  if (!r->Ok()) return false;
  obj->features.reserve(n);
  corpus::FeatureKey prev = 0;
  for (std::uint64_t i = 0; i < n && r->Ok(); ++i) {
    prev += corpus::FeatureKey(r->GetVarint());
    const std::uint32_t freq = std::uint32_t(r->GetVarint());
    if (freq == 0) return false;
    obj->features.push_back({prev, freq});
  }
  return r->Ok();
}

}  // namespace

std::string SerializeCorpus(const corpus::Corpus& corpus) {
  BinaryWriter w;
  w.PutVarint(kSnapshotMagic);
  w.PutVarint(kSnapshotVersion);
  const corpus::Context& ctx = corpus.GetContext();
  w.PutVarint(ctx.num_topics);
  WriteVocabulary(ctx.vocabulary, &w);
  WriteTaxonomy(ctx.taxonomy, &w);
  WriteVisualVocabulary(ctx.visual_vocabulary, &w);
  WriteUserGraph(ctx.user_graph, &w);
  w.PutVarint(corpus.Size());
  for (const corpus::MediaObject& obj : corpus.Objects())
    WriteObject(obj, &w);
  return w.Take();
}

std::optional<corpus::Corpus> DeserializeCorpus(std::string_view bytes) {
  BinaryReader r(bytes);
  if (r.GetVarint() != kSnapshotMagic) return std::nullopt;
  if (r.GetVarint() != kSnapshotVersion) return std::nullopt;
  corpus::Corpus out;
  corpus::Context& ctx = out.MutableContext();
  ctx.num_topics = std::size_t(r.GetVarint());
  if (!r.Ok()) return std::nullopt;
  if (!ReadVocabulary(&r, &ctx.vocabulary)) return std::nullopt;
  if (!ReadTaxonomy(&r, &ctx.taxonomy)) return std::nullopt;
  if (!ReadVisualVocabulary(&r, &ctx.visual_vocabulary)) return std::nullopt;
  if (!ReadUserGraph(&r, &ctx.user_graph)) return std::nullopt;
  const std::uint64_t objects = r.GetVarint();
  for (std::uint64_t i = 0; i < objects && r.Ok(); ++i) {
    corpus::MediaObject obj;
    if (!ReadObject(&r, &obj)) return std::nullopt;
    out.Add(std::move(obj));
  }
  if (!r.Ok()) return std::nullopt;
  return out;
}

bool SaveCorpus(const corpus::Corpus& corpus, const std::string& path) {
  const std::string bytes = SerializeCorpus(corpus);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return std::fclose(f) == 0 && ok;
}

std::optional<corpus::Corpus> LoadCorpus(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string bytes;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return DeserializeCorpus(bytes);
}

}  // namespace figdb::index
