#include "index/retrieval_engine.hpp"

#include "index/threshold_algorithm.hpp"
#include "util/check.hpp"
#include "util/top_k.hpp"

namespace figdb::index {
namespace {

using util::BudgetTracker;
using util::QueryBudget;
using util::Status;
using util::StatusOr;

std::vector<core::SearchResult> TakeResults(
    util::TopK<corpus::ObjectId>* topk) {
  std::vector<core::SearchResult> out;
  for (const auto& e : topk->Take()) out.push_back({e.id, e.score});
  return out;
}

/// Deadline poll stride for the rerank loop: full-model Score is expensive
/// enough that a clock read every few candidates is noise.
constexpr std::size_t kRerankDeadlineStride = 8;

}  // namespace

void FigRetrievalEngine::BuildScoringStack() {
  cors_ = std::make_shared<stats::CorSCalculator>(matrix_);
  core::MrfOptions exact_options = options_.mrf;
  exact_options.count_partial_cliques = false;
  exact_potential_ = std::make_shared<core::PotentialEvaluator>(
      correlations_, cors_, exact_options);
  core::MrfOptions full_options = options_.mrf;
  full_options.count_partial_cliques = true;
  full_potential_ = std::make_shared<core::PotentialEvaluator>(
      correlations_, cors_, full_options);
  scorer_ = std::make_unique<core::FigScorer>(full_potential_);
}

FigRetrievalEngine::FigRetrievalEngine(const corpus::Corpus& corpus,
                                       EngineOptions options)
    : corpus_(&corpus), options_(options) {
  // Keep index-side and query-side clique shapes consistent: a query clique
  // larger than what was indexed could never match.
  options_.index.type_mask = options_.type_mask;
  options_.index.cliques.max_features = options_.mrf.cliques.max_features;

  matrix_ = std::make_shared<stats::FeatureMatrix>(
      stats::FeatureMatrix::Build(corpus));
  correlations_ = std::make_shared<stats::CorrelationModel>(
      corpus.SharedContext(), matrix_, options_.correlations);
  BuildScoringStack();
  if (options_.build_index) {
    index_ = std::make_unique<CliqueIndex>(
        CliqueIndex::Build(corpus, *correlations_, options_.index));
  }
}

FigRetrievalEngine::FigRetrievalEngine(
    const corpus::Corpus& corpus, EngineOptions options,
    std::shared_ptr<const stats::FeatureMatrix> matrix,
    std::shared_ptr<const stats::CorrelationModel> correlations,
    CliqueIndex index)
    : corpus_(&corpus), options_(options) {
  options_.index = index.Options();
  options_.type_mask = options_.index.type_mask;
  options_.mrf.cliques.max_features = options_.index.cliques.max_features;
  FIGDB_CHECK_MSG(matrix != nullptr && correlations != nullptr,
                  "adopted substrates must be non-null");
  FIGDB_CHECK_MSG(index.FullyCompacted(),
                  "serving snapshot requires a fully compacted index");
  matrix_ = std::move(matrix);
  correlations_ = std::move(correlations);
  BuildScoringStack();
  index_ = std::make_unique<CliqueIndex>(std::move(index));
}

void FigRetrievalEngine::SetLambda(const std::vector<double>& lambda) {
  exact_potential_->SetLambda(lambda);
  full_potential_->SetLambda(lambda);
}

ScoredList FigRetrievalEngine::BuildCliqueList(
    const core::Clique& clique) const {
  FIGDB_CHECK_MSG(index_ != nullptr, "engine built without an index");
  ScoredList list;
  for (corpus::ObjectId id : index_->Lookup(clique.features)) {
    const double phi = exact_potential_->Phi(clique, corpus_->Object(id));
    if (phi > 0.0) list.entries.push_back({id, phi});
  }
  return list;
}

std::vector<ScoredList> FigRetrievalEngine::BuildScoredLists(
    const core::QueryModel& qm, util::BudgetTracker* budget,
    bool* truncated) const {
  FIGDB_CHECK_MSG(index_ != nullptr, "engine built without an index");
  std::vector<ScoredList> lists;
  lists.reserve(qm.cliques.size());
  for (const core::Clique& c : qm.cliques) {
    // Deadline pressure during list construction sheds the TRAILING query
    // cliques: every list already built is complete, so the scores the
    // merge produces are exact for the cliques that were evaluated.
    if (budget != nullptr && budget->CheckDeadline()) {
      if (truncated != nullptr) *truncated = true;
      break;
    }
    ScoredList list = BuildCliqueList(c);
    if (!list.entries.empty()) lists.push_back(std::move(list));
  }
  return lists;
}

core::SearchResponse FigRetrievalEngine::SearchWithBudget(
    const core::QueryModel& qm, std::size_t k,
    util::BudgetTracker* budget) const {
  core::SearchResponse resp;
  if (index_ != nullptr && index_->Degraded()) resp.truncated = true;
  std::vector<ScoredList> lists =
      BuildScoredLists(qm, budget, &resp.truncated);
  const std::size_t stage1_k =
      options_.rerank_candidates == 0
          ? k
          : std::max(k, options_.rerank_candidates);
  std::vector<core::SearchResult> merged =
      options_.merge == EngineOptions::MergeMode::kThresholdAlgorithm
          ? ThresholdMerge(std::move(lists), stage1_k, budget,
                           &resp.truncated)
          : ExhaustiveMerge(lists, stage1_k, budget, &resp.truncated);
  if (options_.rerank_candidates == 0) {
    // Single-stage engine: stage-1 scores ARE the final scores.
    resp.results = std::move(merged);
    if (budget != nullptr)
      resp.scored_candidates = budget->ScoredCandidates();
    return resp;
  }

  // Shedding decision: the stage-2 rerank is dropped BEFORE any candidate
  // would be — when the budget is already exhausted, the deadline has
  // passed, or the candidate allowance cannot cover re-scoring every
  // merged candidate.
  bool shed_rerank =
      budget != nullptr &&
      (budget->Exhausted() || budget->CheckDeadline() ||
       !budget->HasCandidateAllowance(merged.size()));

  if (!shed_rerank) {
    // Stage 2: full-model re-scoring (smoothing credits partial cliques).
    util::TopK<corpus::ObjectId> topk(k);
    for (std::size_t i = 0; i < merged.size(); ++i) {
      if (budget != nullptr) {
        if (i % kRerankDeadlineStride == 0 && budget->CheckDeadline()) {
          // Mid-rerank expiry: mixing stage-1 and stage-2 scores would
          // produce an inconsistent ranking, so the whole stage is shed.
          shed_rerank = true;
          break;
        }
        budget->ChargeScored();
      }
      topk.Offer(scorer_->Score(qm, corpus_->Object(merged[i].object)),
                 merged[i].object);
    }
    if (!shed_rerank) {
      resp.results = TakeResults(&topk);
      resp.reranked = true;
    }
  }
  if (shed_rerank) {
    // Fall back to exact-clique stage-1 scores (merge output is already
    // sorted best-first).
    if (merged.size() > k) merged.resize(k);
    resp.results = std::move(merged);
    resp.truncated = true;
  }
  if (budget != nullptr) resp.scored_candidates = budget->ScoredCandidates();
  return resp;
}

std::vector<core::SearchResult> FigRetrievalEngine::Search(
    const corpus::MediaObject& query, std::size_t k) const {
  const core::QueryModel qm = scorer_->Compile(query, options_.type_mask);
  return SearchWithBudget(qm, k, /*budget=*/nullptr).results;
}

util::Status FigRetrievalEngine::ValidateQuery(
    const corpus::MediaObject& query, std::size_t k) const {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (query.features.empty())
    return Status::InvalidArgument("query has no features");
  const corpus::Context& ctx = corpus_->GetContext();
  for (const corpus::FeatureOccurrence& f : query.features) {
    const std::uint32_t id = corpus::IdOf(f.feature);
    bool known = false;
    const char* modality = "unknown";
    switch (corpus::TypeOf(f.feature)) {
      case corpus::FeatureType::kText:
        known = id < ctx.vocabulary.Size();
        modality = "text";
        break;
      case corpus::FeatureType::kVisual:
        known = id < ctx.visual_vocabulary.WordCount();
        modality = "visual";
        break;
      case corpus::FeatureType::kUser:
        known = id < ctx.user_graph.UserCount();
        modality = "user";
        break;
    }
    if (!known)
      return Status::InvalidArgument(
          "out-of-vocabulary " + std::string(modality) + " feature id " +
          std::to_string(id));
    if (f.frequency == 0)
      return Status::InvalidArgument("zero-frequency feature id " +
                                     std::to_string(id));
  }
  return Status::Ok();
}

StatusOr<core::SearchResponse> FigRetrievalEngine::TrySearch(
    const corpus::MediaObject& query, std::size_t k,
    const QueryBudget& budget) const {
  FIGDB_RETURN_IF_ERROR(ValidateQuery(query, k));
  if (index_ == nullptr)
    return Status::Unavailable("engine was built without an inverted index");
  const core::QueryModel qm = scorer_->Compile(query, options_.type_mask);
  BudgetTracker tracker(budget);
  core::SearchResponse resp = SearchWithBudget(
      qm, k, budget.Unlimited() ? nullptr : &tracker);
  if (resp.results.empty() && tracker.Exhausted())
    return Status::DeadlineExceeded(
        "query budget exhausted before any result was produced");
  return resp;
}

std::vector<core::SearchResult> FigRetrievalEngine::Rank(
    const corpus::MediaObject& query,
    const std::vector<corpus::ObjectId>& candidates, std::size_t k) const {
  const core::QueryModel qm = scorer_->Compile(query, options_.type_mask);
  util::TopK<corpus::ObjectId> topk(k);
  for (corpus::ObjectId id : candidates)
    topk.Offer(scorer_->Score(qm, corpus_->Object(id)), id);
  return TakeResults(&topk);
}

StatusOr<core::SearchResponse> FigRetrievalEngine::TryRank(
    const corpus::MediaObject& query,
    const std::vector<corpus::ObjectId>& candidates, std::size_t k,
    const QueryBudget& budget) const {
  FIGDB_RETURN_IF_ERROR(ValidateQuery(query, k));
  for (corpus::ObjectId id : candidates) {
    if (id >= corpus_->Size())
      return Status::NotFound("candidate object id " + std::to_string(id) +
                              " past the corpus end (" +
                              std::to_string(corpus_->Size()) + " objects)");
  }
  const core::QueryModel qm = scorer_->Compile(query, options_.type_mask);
  BudgetTracker tracker(budget);
  BudgetTracker* bt = budget.Unlimited() ? nullptr : &tracker;
  core::SearchResponse resp;
  resp.reranked = true;  // Rank always scores with the full model
  util::TopK<corpus::ObjectId> topk(k);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (bt != nullptr) {
      if (i % kRerankDeadlineStride == 0 && bt->CheckDeadline()) {
        resp.truncated = true;
        break;
      }
      if (!bt->ChargeScored()) {
        resp.truncated = true;
        break;
      }
    }
    topk.Offer(scorer_->Score(qm, corpus_->Object(candidates[i])),
               candidates[i]);
  }
  resp.results = TakeResults(&topk);
  if (bt != nullptr) resp.scored_candidates = bt->ScoredCandidates();
  if (resp.results.empty() && tracker.Exhausted() && !candidates.empty())
    return Status::DeadlineExceeded(
        "query budget exhausted before any candidate was scored");
  return resp;
}

std::vector<core::SearchResult> FigRetrievalEngine::SearchSequential(
    const corpus::MediaObject& query, std::size_t k) const {
  const core::QueryModel qm = scorer_->Compile(query, options_.type_mask);
  core::FigScorer exact_scorer(exact_potential_);
  util::TopK<corpus::ObjectId> topk(k);
  for (const corpus::MediaObject& obj : corpus_->Objects()) {
    // Candidate rule of Algorithm 1: the object must contain at least one
    // query clique (exact score > 0); then the full model ranks it.
    if (exact_scorer.Score(qm, obj) <= 0.0) continue;
    topk.Offer(scorer_->Score(qm, obj), obj.id);
  }
  return TakeResults(&topk);
}

}  // namespace figdb::index
