#include "index/retrieval_engine.hpp"

#include "index/threshold_algorithm.hpp"
#include "util/check.hpp"
#include "util/top_k.hpp"

namespace figdb::index {

FigRetrievalEngine::FigRetrievalEngine(const corpus::Corpus& corpus,
                                       EngineOptions options)
    : corpus_(&corpus), options_(options) {
  // Keep index-side and query-side clique shapes consistent: a query clique
  // larger than what was indexed could never match.
  options_.index.type_mask = options_.type_mask;
  options_.index.cliques.max_features = options_.mrf.cliques.max_features;

  matrix_ = std::make_shared<stats::FeatureMatrix>(
      stats::FeatureMatrix::Build(corpus));
  correlations_ = std::make_shared<stats::CorrelationModel>(
      corpus.SharedContext(), matrix_, options_.correlations);
  cors_ = std::make_shared<stats::CorSCalculator>(matrix_);
  core::MrfOptions exact_options = options_.mrf;
  exact_options.count_partial_cliques = false;
  exact_potential_ = std::make_shared<core::PotentialEvaluator>(
      correlations_, cors_, exact_options);
  core::MrfOptions full_options = options_.mrf;
  full_options.count_partial_cliques = true;
  full_potential_ = std::make_shared<core::PotentialEvaluator>(
      correlations_, cors_, full_options);
  scorer_ = std::make_unique<core::FigScorer>(full_potential_);
  if (options_.build_index) {
    index_ = std::make_unique<CliqueIndex>(
        CliqueIndex::Build(corpus, *correlations_, options_.index));
  }
}

void FigRetrievalEngine::SetLambda(const std::vector<double>& lambda) {
  exact_potential_->SetLambda(lambda);
  full_potential_->SetLambda(lambda);
}

std::vector<ScoredList> FigRetrievalEngine::BuildScoredLists(
    const core::QueryModel& qm) const {
  FIGDB_CHECK_MSG(index_ != nullptr, "engine built without an index");
  std::vector<ScoredList> lists;
  lists.reserve(qm.cliques.size());
  for (const core::Clique& c : qm.cliques) {
    ScoredList list;
    for (corpus::ObjectId id : index_->Lookup(c.features)) {
      const double phi = exact_potential_->Phi(c, corpus_->Object(id));
      if (phi > 0.0) list.entries.push_back({id, phi});
    }
    if (!list.entries.empty()) lists.push_back(std::move(list));
  }
  return lists;
}

std::vector<core::SearchResult> FigRetrievalEngine::Search(
    const corpus::MediaObject& query, std::size_t k) const {
  const core::QueryModel qm = scorer_->Compile(query, options_.type_mask);
  std::vector<ScoredList> lists = BuildScoredLists(qm);
  const std::size_t stage1_k =
      options_.rerank_candidates == 0
          ? k
          : std::max(k, options_.rerank_candidates);
  std::vector<core::SearchResult> merged =
      options_.merge == EngineOptions::MergeMode::kThresholdAlgorithm
          ? ThresholdMerge(std::move(lists), stage1_k)
          : ExhaustiveMerge(lists, stage1_k);
  if (options_.rerank_candidates == 0) return merged;
  // Stage 2: full-model re-scoring (smoothing credits partial cliques).
  util::TopK<corpus::ObjectId> topk(k);
  for (const core::SearchResult& r : merged)
    topk.Offer(scorer_->Score(qm, corpus_->Object(r.object)), r.object);
  std::vector<core::SearchResult> out;
  for (const auto& e : topk.Take()) out.push_back({e.id, e.score});
  return out;
}

std::vector<core::SearchResult> FigRetrievalEngine::Rank(
    const corpus::MediaObject& query,
    const std::vector<corpus::ObjectId>& candidates, std::size_t k) const {
  const core::QueryModel qm = scorer_->Compile(query, options_.type_mask);
  util::TopK<corpus::ObjectId> topk(k);
  for (corpus::ObjectId id : candidates)
    topk.Offer(scorer_->Score(qm, corpus_->Object(id)), id);
  std::vector<core::SearchResult> out;
  for (const auto& e : topk.Take()) out.push_back({e.id, e.score});
  return out;
}

std::vector<core::SearchResult> FigRetrievalEngine::SearchSequential(
    const corpus::MediaObject& query, std::size_t k) const {
  const core::QueryModel qm = scorer_->Compile(query, options_.type_mask);
  core::FigScorer exact_scorer(exact_potential_);
  util::TopK<corpus::ObjectId> topk(k);
  for (const corpus::MediaObject& obj : corpus_->Objects()) {
    // Candidate rule of Algorithm 1: the object must contain at least one
    // query clique (exact score > 0); then the full model ranks it.
    if (exact_scorer.Score(qm, obj) <= 0.0) continue;
    topk.Offer(scorer_->Score(qm, obj), obj.id);
  }
  std::vector<core::SearchResult> out;
  for (const auto& e : topk.Take()) out.push_back({e.id, e.score});
  return out;
}

}  // namespace figdb::index
