#include "index/figdb_store.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "index/storage.hpp"
#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/serde.hpp"

namespace figdb::index {
namespace {

using util::BinaryReader;
using util::BinaryWriter;
using util::Status;
using util::StatusOr;

/// A removed object's slot: no features, no topic, no month. Slots like
/// this contribute nothing to statistics, the index, or query answers, so
/// the serialized corpus needs no separate removed-id list.
bool IsTombstoneSlot(const corpus::MediaObject& obj) {
  return obj.features.empty();
}

Status ReadFileBytes(const std::string& path, std::string* bytes) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    return Status::NotFound("cannot open '" + path + "' for reading");
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes->append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error)
    return Status::Unavailable("read error on '" + path + "': " +
                               std::strerror(errno));
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

std::string FigDbStore::CheckpointPath(const std::string& dir) {
  return dir + "/checkpoint.figdb";
}

std::string FigDbStore::WalPath(const std::string& dir) {
  return dir + "/wal.figdb";
}

void FigDbStore::RebuildDerivedState() {
  matrix_ = std::make_shared<stats::FeatureMatrix>(
      stats::FeatureMatrix::Build(corpus_));
  correlations_ = std::make_shared<stats::CorrelationModel>(
      corpus_.SharedContext(), matrix_, options_.correlations);
  index_ = CliqueIndex::Build(corpus_, *correlations_, options_.index);
  removed_.clear();
  for (const corpus::MediaObject& obj : corpus_.Objects())
    if (IsTombstoneSlot(obj)) removed_.insert(obj.id);
}

Status FigDbStore::ValidateIngest(const corpus::MediaObject& obj) const {
  if (obj.features.empty())
    return Status::InvalidArgument("ingested object has no features");
  const corpus::Context& ctx = corpus_.GetContext();
  corpus::FeatureKey prev = 0;
  bool first = true;
  for (const corpus::FeatureOccurrence& f : obj.features) {
    if (!first && f.feature <= prev)
      return Status::InvalidArgument(
          "ingested object is not normalized (features unsorted or "
          "duplicated); call MediaObject::Normalize first");
    first = false;
    prev = f.feature;
    if (f.frequency == 0)
      return Status::InvalidArgument("zero-frequency feature " +
                                     ctx.DescribeFeature(f.feature));
    const std::uint32_t id = corpus::IdOf(f.feature);
    bool known = false;
    switch (corpus::TypeOf(f.feature)) {
      case corpus::FeatureType::kText:
        known = id < ctx.vocabulary.Size();
        break;
      case corpus::FeatureType::kVisual:
        known = id < ctx.visual_vocabulary.WordCount();
        break;
      case corpus::FeatureType::kUser:
        known = id < ctx.user_graph.UserCount();
        break;
    }
    if (!known)
      return Status::InvalidArgument("out-of-vocabulary feature " +
                                     ctx.DescribeFeature(f.feature));
  }
  return Status::Ok();
}

Status FigDbStore::Apply(const WalRecord& record, bool replay) {
  // Apply runs on the store's writer thread (the store-level single-writer
  // contract), which entitles it to the index writer role.
  util::ScopedRole writer(index_.WriterCap());
  switch (record.type) {
    case WalRecord::Type::kAddObject: {
      if (record.object_id != corpus_.Size())
        return Status::DataLoss(
            "WAL lsn " + std::to_string(record.lsn) + " adds object " +
            std::to_string(record.object_id) + " but the next id is " +
            std::to_string(corpus_.Size()) +
            (replay ? " (checkpoint/WAL divergence)" : ""));
      if (replay) {
        // The frame CRC passed, so a bad object here means writer/reader
        // version skew or a checkpoint from a different store lineage.
        Status valid = ValidateIngest(record.object);
        if (!valid.ok())
          return Status::DataLoss("WAL lsn " + std::to_string(record.lsn) +
                                  ": " + valid.message());
      }
      const corpus::ObjectId id = corpus_.Add(record.object);
      // During replay the index does not exist yet — it is rebuilt from the
      // fully recovered corpus afterwards.
      if (correlations_ != nullptr)
        index_.AddObject(corpus_.Object(id), *correlations_);
      return Status::Ok();
    }
    case WalRecord::Type::kRemoveObject: {
      if (record.object_id >= corpus_.Size() ||
          IsTombstoneSlot(corpus_.Object(record.object_id))) {
        const std::string what =
            "remove of " +
            std::string(record.object_id >= corpus_.Size() ? "unknown"
                                                           : "already removed") +
            " object " + std::to_string(record.object_id);
        return replay ? Status::DataLoss("WAL lsn " +
                                         std::to_string(record.lsn) + ": " +
                                         what)
                      : Status::NotFound(what);
      }
      corpus::MediaObject& slot = corpus_.MutableObject(record.object_id);
      slot.features.clear();
      slot.topic = corpus::MediaObject::kInvalidTopic;
      slot.month = 0;
      removed_.insert(record.object_id);
      if (correlations_ != nullptr) index_.RemoveObject(record.object_id);
      return Status::Ok();
    }
  }
  return Status::DataLoss("WAL lsn " + std::to_string(record.lsn) +
                          ": unknown record type");
}

Status FigDbStore::WriteCheckpoint(std::uint64_t applied_lsn) const {
  BinaryWriter payload;
  payload.PutVarint(applied_lsn);
  payload.PutRaw(SerializeCorpus(corpus_));
  BinaryWriter file;
  file.PutFixed32(kCheckpointMagic);
  file.PutFixed32(kCheckpointVersion);
  file.PutFixed32(util::Crc32(payload.Buffer()));
  file.PutRaw(payload.Buffer());
  return util::AtomicWriteFile(CheckpointPath(dir_), file.Buffer(),
                               {.write_io = "checkpoint/write_io",
                                .fsync = "checkpoint/fsync",
                                .rename = "checkpoint/rename"});
}

StatusOr<FigDbStore> FigDbStore::Create(const std::string& dir,
                                        const corpus::Corpus& base,
                                        Options options) {
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST)
    return Status::Unavailable("cannot create store directory '" + dir +
                               "': " + std::strerror(errno));
  if (FileExists(CheckpointPath(dir)))
    return Status::FailedPrecondition(
        "'" + dir + "' already holds a figdb store; use Recover");

  FigDbStore store;
  store.dir_ = dir;
  store.options_ = options;
  store.corpus_ = base;

  // WAL first, checkpoint second: if we crash between the two, the
  // directory has no checkpoint and Create never reported success, so
  // the half-made store is simply re-created.
  auto wal = WriteAheadLog::Open(WalPath(dir));
  if (!wal.ok()) return wal.status();
  store.wal_ = std::move(*wal);
  if (store.wal_.SizeBytes() > 8) {
    // Leftover log from an aborted Create: start from a clean slate.
    FIGDB_RETURN_IF_ERROR(store.wal_.Reset());
  }
  FIGDB_RETURN_IF_ERROR(store.WriteCheckpoint(/*applied_lsn=*/0));
  store.RebuildDerivedState();
  return store;
}

StatusOr<FigDbStore> FigDbStore::Recover(const std::string& dir,
                                         Options options) {
  FigDbStore store;
  store.dir_ = dir;
  store.options_ = options;

  // ---- 1. The last good checkpoint.
  std::string bytes;
  FIGDB_RETURN_IF_ERROR(ReadFileBytes(CheckpointPath(dir), &bytes));
  BinaryReader r(bytes);
  const std::uint32_t magic = r.GetFixed32();
  const std::uint32_t version = r.GetFixed32();
  if (!r.Ok() || magic != kCheckpointMagic) {
    // Built up with += (not one operator+ chain): the `const char* +
    // string&&` rvalue-append overload trips a GCC 12 -Wrestrict false
    // positive inside char_traits when inlined here.
    std::string msg = "'";
    msg += CheckpointPath(dir);
    msg += "' is not a figdb checkpoint";
    return Status::InvalidArgument(std::move(msg));
  }
  if (version != kCheckpointVersion)
    return Status::InvalidArgument(
        "unsupported checkpoint version " + std::to_string(version) +
        " (expected " + std::to_string(kCheckpointVersion) + ")");
  const std::uint32_t stored_crc = r.GetFixed32();
  const std::string_view payload_bytes = r.GetRaw(r.Remaining());
  if (!r.Ok() || util::Crc32(payload_bytes) != stored_crc)
    return Status::DataLoss("checkpoint '" + CheckpointPath(dir) +
                            "': CRC mismatch (the write path is atomic, so "
                            "this is bit rot, not a torn write)");
  BinaryReader payload(payload_bytes);
  const std::uint64_t applied_lsn = payload.GetVarint();
  if (!payload.Ok())
    return Status::DataLoss("checkpoint '" + CheckpointPath(dir) +
                            "': truncated metadata");
  auto loaded = DeserializeCorpus(payload_bytes.substr(payload.Position()));
  if (!loaded.ok()) return loaded.status();
  store.corpus_ = std::move(*loaded);
  store.checkpoint_lsn_ = applied_lsn;
  store.recovery_.checkpoint_lsn = applied_lsn;

  // ---- 2. Replay the WAL tail.
  auto replay = WriteAheadLog::Replay(WalPath(dir));
  if (!replay.ok()) {
    if (replay.status().code() == util::StatusCode::kNotFound)
      return Status::DataLoss("store '" + dir +
                              "' has a checkpoint but no WAL");
    return replay.status();
  }
  store.recovery_.torn_tail = replay->torn_tail;
  store.recovery_.torn_bytes = replay->dropped_bytes;
  std::uint64_t last_lsn = applied_lsn;
  for (const WalRecord& record : replay->records) {
    if (record.lsn <= applied_lsn) {
      // Already folded into the checkpoint: the crash window between the
      // checkpoint rename and the WAL truncation.
      ++store.recovery_.skipped_records;
      continue;
    }
    FIGDB_RETURN_IF_ERROR(store.Apply(record, /*replay=*/true));
    last_lsn = record.lsn;
    ++store.recovery_.replayed_records;
  }
  if (replay->torn_tail) {
    // Drop the torn bytes so post-recovery appends never land after
    // garbage (replay would then misread them as mid-log corruption).
    FIGDB_RETURN_IF_ERROR(
        WriteAheadLog::TruncateTail(WalPath(dir), replay->valid_bytes));
  }

  // ---- 3. Rebuild derived state and reopen the log.
  store.next_lsn_ = last_lsn + 1;
  store.RebuildDerivedState();
  auto wal = WriteAheadLog::Open(WalPath(dir));
  if (!wal.ok()) return wal.status();
  store.wal_ = std::move(*wal);
  store.wal_.NoteExistingRecords(replay->records.size());
  return store;
}

StatusOr<corpus::ObjectId> FigDbStore::Ingest(corpus::MediaObject object) {
  if (wounded_)
    return Status::FailedPrecondition(
        "store is wounded by an earlier durability failure; run Recover "
        "(or Checkpoint to re-anchor) before mutating");
  FIGDB_RETURN_IF_ERROR(ValidateIngest(object));

  WalRecord record;
  record.lsn = next_lsn_;
  record.type = WalRecord::Type::kAddObject;
  record.object_id = corpus::ObjectId(corpus_.Size());
  record.object = std::move(object);
  Status logged = wal_.Append(record);
  if (!logged.ok()) {
    // The mutation was NOT applied; whether its bytes reached the disk is
    // unknown (short write, failed fsync). The in-memory state is still the
    // last acknowledged state, but the WAL tail may be torn — stop
    // accepting writes until recovery or a checkpoint re-anchors.
    wounded_ = true;
    return logged;
  }
  FIGDB_RETURN_IF_ERROR(Apply(record, /*replay=*/false));
  ++next_lsn_;
  return record.object_id;
}

Status FigDbStore::Remove(corpus::ObjectId id) {
  if (wounded_)
    return Status::FailedPrecondition(
        "store is wounded by an earlier durability failure; run Recover "
        "(or Checkpoint to re-anchor) before mutating");
  if (id >= corpus_.Size() || removed_.count(id) != 0)
    return Status::NotFound("remove of " +
                            std::string(id >= corpus_.Size()
                                            ? "unknown"
                                            : "already removed") +
                            " object " + std::to_string(id));

  WalRecord record;
  record.lsn = next_lsn_;
  record.type = WalRecord::Type::kRemoveObject;
  record.object_id = id;
  Status logged = wal_.Append(record);
  if (!logged.ok()) {
    wounded_ = true;
    return logged;
  }
  FIGDB_RETURN_IF_ERROR(Apply(record, /*replay=*/false));
  ++next_lsn_;
  return Status::Ok();
}

Status FigDbStore::Checkpoint() {
  // Tombstones are about to become irrelevant: the checkpoint serializes
  // the corpus, and removed slots are already empty there. Checkpoint runs
  // on the store's writer thread, which holds the index writer role.
  util::ScopedRole writer(index_.WriterCap());
  index_.CompactAll();
  FIGDB_RETURN_IF_ERROR(WriteCheckpoint(LastLsn()));
  checkpoint_lsn_ = LastLsn();
  // The rename landed: every mutation up to LastLsn() is durable in the
  // checkpoint. Truncating the WAL is an optimisation, not a correctness
  // step — if it fails, recovery skips the stale records by LSN. But a
  // wounded store may carry a torn WAL tail, and appending after torn bytes
  // would read as mid-log corruption, so healing REQUIRES the truncation.
  Status reset = wal_.Reset();
  if (!reset.ok()) return reset;
  wounded_ = false;
  return Status::Ok();
}

}  // namespace figdb::index
