#include "index/wal.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "index/storage.hpp"
#include "util/crc32.hpp"
#include "util/failpoint.hpp"
#include "util/serde.hpp"

namespace figdb::index {
namespace {

using util::BinaryReader;
using util::BinaryWriter;
using util::Status;
using util::StatusOr;

/// fixed32 magic + fixed32 version.
constexpr std::uint64_t kHeaderBytes = 8;
/// fixed32 payload size + fixed32 payload CRC.
constexpr std::uint64_t kFrameBytes = 8;

Status IoError(const std::string& what, const std::string& path) {
  return Status::Unavailable(what + " '" + path + "': " +
                             std::strerror(errno));
}

std::string EncodeHeader() {
  BinaryWriter w;
  w.PutFixed32(kWalMagic);
  w.PutFixed32(kWalVersion);
  return w.Take();
}

std::string EncodePayload(const WalRecord& record) {
  BinaryWriter w;
  w.PutVarint(record.lsn);
  w.PutU8(std::uint8_t(record.type));
  w.PutVarint(record.object_id);
  if (record.type == WalRecord::Type::kAddObject)
    WriteMediaObject(record.object, &w);
  return w.Take();
}

Status DecodePayload(std::string_view payload, WalRecord* record) {
  BinaryReader r(payload);
  record->lsn = r.GetVarint();
  const std::uint8_t type = r.GetU8();
  record->object_id = corpus::ObjectId(r.GetVarint());
  if (!r.Ok())
    return Status::DataLoss("WAL record: truncated payload head");
  switch (type) {
    case std::uint8_t(WalRecord::Type::kAddObject): {
      record->type = WalRecord::Type::kAddObject;
      Status parsed = ReadMediaObject(&r, &record->object, record->lsn);
      if (!parsed.ok())
        return Status::DataLoss("WAL record lsn " +
                                std::to_string(record->lsn) + ": " +
                                parsed.message());
      record->object.id = record->object_id;
      break;
    }
    case std::uint8_t(WalRecord::Type::kRemoveObject):
      record->type = WalRecord::Type::kRemoveObject;
      break;
    default:
      return Status::DataLoss("WAL record lsn " +
                              std::to_string(record->lsn) +
                              ": unknown record type " +
                              std::to_string(type));
  }
  if (!r.AtEnd())
    return Status::DataLoss("WAL record lsn " + std::to_string(record->lsn) +
                            ": trailing bytes in payload");
  return Status::Ok();
}

Status WriteAndSync(std::FILE* f, std::string_view bytes,
                    const std::string& path) {
  if (std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size())
    return IoError("short write to", path);
  if (std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0)
    return IoError("fsync failed for", path);
  return Status::Ok();
}

}  // namespace

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this != &other) {
    Close();
    file_ = std::exchange(other.file_, nullptr);
    path_ = std::move(other.path_);
    appended_ = other.appended_;
    size_bytes_ = other.size_bytes_;
  }
  return *this;
}

void WriteAheadLog::Close() {
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

StatusOr<WriteAheadLog> WriteAheadLog::Open(const std::string& path) {
  // Probe for an existing log so a foreign or damaged header is rejected
  // instead of appended to.
  std::uint64_t existing_bytes = 0;
  if (std::FILE* probe = std::fopen(path.c_str(), "rb")) {
    char header[kHeaderBytes];
    const std::size_t n = std::fread(header, 1, sizeof(header), probe);
    std::fseek(probe, 0, SEEK_END);
    const long end = std::ftell(probe);
    std::fclose(probe);
    if (n != sizeof(header))
      return Status::DataLoss("WAL '" + path + "': truncated header");
    BinaryReader r(std::string_view(header, sizeof(header)));
    const std::uint32_t magic = r.GetFixed32();
    const std::uint32_t version = r.GetFixed32();
    if (magic != kWalMagic)
      return Status::InvalidArgument("'" + path + "' is not a figdb WAL");
    if (version != kWalVersion)
      return Status::InvalidArgument(
          "unsupported WAL version " + std::to_string(version) +
          " (expected " + std::to_string(kWalVersion) + ")");
    existing_bytes = std::uint64_t(end);
  }

  WriteAheadLog wal;
  wal.path_ = path;
  wal.file_ = std::fopen(path.c_str(), "ab");
  if (wal.file_ == nullptr)
    return IoError("cannot open WAL for append", path);
  wal.size_bytes_ = existing_bytes;
  if (existing_bytes == 0) {
    Status header = WriteAndSync(wal.file_, EncodeHeader(), path);
    if (!header.ok()) return header;
    wal.size_bytes_ = kHeaderBytes;
  }
  return wal;
}

Status WriteAheadLog::Append(const WalRecord& record) {
  if (file_ == nullptr)
    return Status::FailedPrecondition("WAL is not open");
  if (FIGDB_FAILPOINT("wal/append_io"))
    return Status::Unavailable("injected WAL append failure (no bytes hit '" +
                               path_ + "')");

  const std::string payload = EncodePayload(record);
  BinaryWriter frame;
  frame.PutFixed32(std::uint32_t(payload.size()));
  frame.PutFixed32(util::Crc32(payload));
  frame.PutRaw(payload);
  const std::string& bytes = frame.Buffer();

  if (FIGDB_FAILPOINT("wal/torn_tail")) {
    // Simulated crash mid-append: a strict prefix of the frame reaches the
    // disk. Replay must treat it as a clean end-of-log.
    const std::string_view torn(bytes.data(), bytes.size() / 2);
    (void)WriteAndSync(file_, torn, path_);
    size_bytes_ += torn.size();
    return Status::Unavailable("injected torn WAL append on '" + path_ +
                               "'");
  }

  Status written = WriteAndSync(file_, bytes, path_);
  if (FIGDB_FAILPOINT("wal/fsync") && written.ok()) {
    // The frame is fully on disk but the caller must assume it may not be:
    // durability of this record is unknown after an fsync failure.
    size_bytes_ += bytes.size();
    return Status::Unavailable("injected WAL fsync failure on '" + path_ +
                               "'");
  }
  if (!written.ok()) return written;
  size_bytes_ += bytes.size();
  ++appended_;
  return Status::Ok();
}

Status WriteAheadLog::Reset() {
  if (file_ == nullptr)
    return Status::FailedPrecondition("WAL is not open");
  if (FIGDB_FAILPOINT("wal/truncate"))
    return Status::Unavailable("injected WAL truncation failure on '" +
                               path_ + "'");
  std::fclose(file_);
  // figdb-lint: allow(atomic-file-io): Reset deliberately truncates the
  // log in place — it only runs after a checkpoint rename made the WAL
  // contents redundant, so a crash mid-truncate loses nothing.
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) return IoError("cannot reopen WAL", path_);
  Status header = WriteAndSync(file_, EncodeHeader(), path_);
  if (!header.ok()) return header;
  size_bytes_ = kHeaderBytes;
  appended_ = 0;
  return Status::Ok();
}

Status WriteAheadLog::TruncateTail(const std::string& path,
                                   std::uint64_t bytes) {
  if (::truncate(path.c_str(), off_t(bytes)) != 0)
    return IoError("cannot truncate torn tail of", path);
  return Status::Ok();
}

StatusOr<WriteAheadLog::ReplayResult> WriteAheadLog::Replay(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    return Status::NotFound("cannot open WAL '" + path + "' for reading");
  std::string bytes;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return IoError("read error on WAL", path);
  return ReplayBytes(bytes, "'" + path + "'");
}

StatusOr<WriteAheadLog::ReplayResult> WriteAheadLog::ReplayBytes(
    std::string_view bytes, const std::string& label) {
  if (bytes.size() < kHeaderBytes)
    return Status::DataLoss("WAL " + label + ": truncated header");
  BinaryReader header(bytes.substr(0, kHeaderBytes));
  const std::uint32_t magic = header.GetFixed32();
  const std::uint32_t version = header.GetFixed32();
  if (magic != kWalMagic)
    return Status::InvalidArgument(label + " is not a figdb WAL");
  if (version != kWalVersion)
    return Status::InvalidArgument(
        "unsupported WAL version " + std::to_string(version) + " (expected " +
        std::to_string(kWalVersion) + ")");

  ReplayResult result;
  result.valid_bytes = kHeaderBytes;
  std::uint64_t offset = kHeaderBytes;
  std::uint64_t last_lsn = 0;
  while (offset < bytes.size()) {
    const std::uint64_t remaining = bytes.size() - offset;
    if (remaining < kFrameBytes) {
      result.torn_tail = true;  // incomplete frame header
      break;
    }
    BinaryReader frame(bytes.substr(offset, kFrameBytes));
    const std::uint32_t size = frame.GetFixed32();
    const std::uint32_t stored_crc = frame.GetFixed32();
    if (std::uint64_t(size) > remaining - kFrameBytes) {
      // The payload never fully landed (or the size word itself is the torn
      // part) — either way nothing after this point is trustworthy, and a
      // complete record cannot follow a short one: clean end-of-log.
      result.torn_tail = true;
      break;
    }
    const std::string_view payload = bytes.substr(offset + kFrameBytes, size);
    if (util::Crc32(payload) != stored_crc) {
      const bool is_final_record =
          offset + kFrameBytes + size == bytes.size();
      if (is_final_record) {
        // A pre-allocated-then-torn final frame: full length, garbage bytes.
        result.torn_tail = true;
        break;
      }
      return Status::DataLoss(
          "WAL " + label + ": CRC mismatch at offset " +
          std::to_string(offset) +
          " with further records after it (mid-log corruption, not a torn "
          "tail)");
    }
    WalRecord record;
    Status parsed = DecodePayload(payload, &record);
    if (!parsed.ok()) return parsed;
    if (record.lsn <= last_lsn && !result.records.empty())
      return Status::DataLoss(
          "WAL " + label + ": LSN " + std::to_string(record.lsn) +
          " does not increase over " + std::to_string(last_lsn));
    last_lsn = record.lsn;
    result.records.push_back(std::move(record));
    offset += kFrameBytes + size;
    result.valid_bytes = offset;
  }
  if (result.torn_tail) result.dropped_bytes = bytes.size() - result.valid_bytes;
  return result;
}

}  // namespace figdb::index
