#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/clique.hpp"
#include "core/fig.hpp"
#include "corpus/corpus.hpp"
#include "index/clique_key.hpp"
#include "stats/correlation.hpp"

/// \file inverted_index.hpp
/// The inverted list on cliques of paper §3.5 / Fig. 3.
///
/// Every database object is converted to its FIG, the FIG's cliques are
/// enumerated, and each clique key maps to the (sorted) list of objects
/// containing that clique. At query time the index answers "which objects
/// share clique c with the query" in O(1) + output size — the candidate
/// generation step of Algorithm 1.

namespace figdb::index {

struct CliqueIndexOptions {
  core::CliqueEnumerationOptions cliques = {.max_features = 3,
                                            .max_cliques = 1024};
  /// Restrict indexed features to these modalities (Fig. 5 experiments).
  std::uint32_t type_mask = core::kAllFeatures;
};

class CliqueIndex {
 public:
  /// Builds the index over the whole corpus. O(sum of per-object cliques).
  static CliqueIndex Build(const corpus::Corpus& corpus,
                           const stats::CorrelationModel& correlations,
                           const CliqueIndexOptions& options);

  /// Objects containing the clique (sorted by id); empty if unknown.
  const std::vector<corpus::ObjectId>& Lookup(
      const std::vector<corpus::FeatureKey>& sorted_features) const;

  /// Incrementally indexes one (new) object — social media databases grow
  /// continuously ("the number increases by approximately 2 million per
  /// day", paper §1). Postings stay sorted for any insertion order.
  void AddObject(const corpus::MediaObject& object,
                 const stats::CorrelationModel& correlations);

  std::size_t DistinctCliques() const { return postings_.size(); }
  std::size_t TotalPostings() const { return total_postings_; }
  const CliqueIndexOptions& Options() const { return options_; }

  /// True when the build was cut short (the `index/build_truncated`
  /// fail-point models resource exhaustion mid-build): the index still
  /// serves lookups, but posting lists may be missing later objects, so
  /// query answers over it are best-effort and tagged truncated.
  bool Degraded() const { return degraded_; }

 private:
  CliqueIndexOptions options_;
  std::unordered_map<CliqueKey, std::vector<corpus::ObjectId>> postings_;
  std::size_t total_postings_ = 0;
  bool degraded_ = false;
  std::vector<corpus::ObjectId> empty_;
};

}  // namespace figdb::index
