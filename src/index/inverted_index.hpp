#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/clique.hpp"
#include "core/fig.hpp"
#include "corpus/corpus.hpp"
#include "index/clique_key.hpp"
#include "stats/correlation.hpp"
#include "util/thread_annotations.hpp"

/// \file inverted_index.hpp
/// The inverted list on cliques of paper §3.5 / Fig. 3.
///
/// Every database object is converted to its FIG, the FIG's cliques are
/// enumerated, and each clique key maps to the (sorted) list of objects
/// containing that clique. At query time the index answers "which objects
/// share clique c with the query" in O(1) + output size — the candidate
/// generation step of Algorithm 1.
///
/// The index is mutable in both directions for live ingestion
/// (figdb_store.hpp): AddObject indexes one new object incrementally, and
/// RemoveObject retires one via posting-list tombstones — an O(1) mark in a
/// removed-id set, paid down lazily the first time each affected posting
/// list is read (and wholesale by CompactAll at checkpoint time). A
/// mutation-maintained index is always equal, posting for posting, to
/// CliqueIndex::Build over the same corpus and correlation model.
///
/// Concurrency contract (the serving layer depends on this — serve/):
///
///   * SINGLE WRITER. AddObject / RemoveObject / CompactAll may only be
///     called by one thread with no concurrent access of any kind. This is
///     the store's writer thread. The contract is expressed as an annotated
///     capability: the mutators FIGDB_REQUIRES(WriterCap()), so (under the
///     FIGDB_THREAD_SAFETY build) they are unreachable except through an
///     explicit util::ScopedRole claim — the claim sites enumerate every
///     place the single-writer obligation is assumed, and a refactor that
///     mutates the index from a new code path fails the build.
///   * CONCURRENT READERS require a FULLY COMPACTED index. Lazy tombstone
///     compaction writes through const Lookup (the posting map is mutable),
///     so Lookup is only safe to call from multiple threads when no
///     tombstones are pending: Lookup then takes a pure-read path that
///     never touches the mutable state. The serving layer guarantees this
///     by compacting eagerly at snapshot-publish time and handing readers
///     immutable, fully compacted snapshot copies; FullyCompacted() is the
///     queryable invariant.

namespace figdb::index {

struct CliqueIndexOptions {
  core::CliqueEnumerationOptions cliques = {.max_features = 3,
                                            .max_cliques = 1024};
  /// Restrict indexed features to these modalities (Fig. 5 experiments).
  std::uint32_t type_mask = core::kAllFeatures;
};

class CliqueIndex {
 public:
  /// Builds the index over the whole corpus. O(sum of per-object cliques).
  static CliqueIndex Build(const corpus::Corpus& corpus,
                           const stats::CorrelationModel& correlations,
                           const CliqueIndexOptions& options);

  /// Objects containing the clique (sorted by id); empty if unknown.
  /// Compacts the hit list against pending tombstones before returning, so
  /// removed objects are never surfaced as candidates. When no tombstones
  /// are pending the call is a pure read (no mutable state touched) and is
  /// safe from concurrent reader threads — see the concurrency contract in
  /// the file comment.
  const std::vector<corpus::ObjectId>& Lookup(
      const std::vector<corpus::FeatureKey>& sorted_features) const;

  /// Incrementally indexes one (new) object — social media databases grow
  /// continuously ("the number increases by approximately 2 million per
  /// day", paper §1). Postings stay sorted for any insertion order.
  void AddObject(const corpus::MediaObject& object,
                 const stats::CorrelationModel& correlations)
      FIGDB_REQUIRES(writer_cap_);

  /// Retires an object in O(1) by tombstoning its id: every posting list is
  /// purged of tombstoned ids lazily on its next Lookup. Ids are never
  /// reused by the store, so a tombstone is permanent until compaction.
  void RemoveObject(corpus::ObjectId id) FIGDB_REQUIRES(writer_cap_);

  /// Eagerly purges every posting list of tombstoned ids, drops lists that
  /// became empty, and clears the tombstone set. Called at checkpoint time
  /// so the tombstone set stays bounded by the removals per checkpoint
  /// interval.
  void CompactAll() FIGDB_REQUIRES(writer_cap_);

  /// The single-writer role capability. Mutators require it; claim it with
  /// `util::ScopedRole writer(index.WriterCap());` from the one thread
  /// entitled to mutate (see the file-comment contract).
  util::RoleCapability& WriterCap() const FIGDB_RETURN_CAPABILITY(writer_cap_) {
    return writer_cap_;
  }

  /// Pending (not yet fully compacted) removed ids.
  std::size_t TombstoneCount() const { return tombstones_.size(); }

  /// True when no tombstones are pending: every posting list is current and
  /// Lookup is concurrency-safe (pure reads). Established by CompactAll and
  /// required of every serving snapshot.
  bool FullyCompacted() const { return tombstones_.empty(); }

  /// Full contents as sorted (clique key, sorted live ids) pairs, with
  /// tombstones applied. For equivalence tests and debug tooling — O(index).
  std::vector<std::pair<CliqueKey, std::vector<corpus::ObjectId>>>
  DumpPostings() const;

  /// Counts include lists not yet compacted, so between a RemoveObject and
  /// the next CompactAll they are upper bounds on the live values.
  std::size_t DistinctCliques() const { return postings_.size(); }
  std::size_t TotalPostings() const { return total_postings_; }
  const CliqueIndexOptions& Options() const { return options_; }

  /// True when the build was cut short (the `index/build_truncated`
  /// fail-point models resource exhaustion mid-build): the index still
  /// serves lookups, but posting lists may be missing later objects, so
  /// query answers over it are best-effort and tagged truncated.
  bool Degraded() const { return degraded_; }

 private:
  struct PostingList {
    std::vector<corpus::ObjectId> ids;
    /// Tombstone generation this list was last compacted against.
    std::uint64_t compacted_at = 0;
  };

  /// Applies pending tombstones to one list (no-op when already current).
  void CompactList(PostingList* list) const;

  CliqueIndexOptions options_;
  // Lazily compacted via const Lookup — mutable, and therefore only safe
  // to share across reader threads while FullyCompacted() holds (Lookup
  // then never touches these through its const path; see file comment).
  mutable std::unordered_map<CliqueKey, PostingList> postings_;
  mutable std::size_t total_postings_ = 0;
  std::unordered_set<corpus::ObjectId> tombstones_;
  /// Bumped on every RemoveObject; lists lag behind until compacted.
  std::uint64_t tombstone_generation_ = 0;
  bool degraded_ = false;
  std::vector<corpus::ObjectId> empty_;
  /// Zero-cost single-writer capability (copies get a fresh, unclaimed
  /// role). Mutable so const holders can hand out the capability to claim.
  mutable util::RoleCapability writer_cap_;
};

}  // namespace figdb::index
