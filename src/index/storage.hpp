#pragma once

#include <string>

#include "corpus/corpus.hpp"
#include "util/serde.hpp"
#include "util/status.hpp"

/// \file storage.hpp
/// Binary persistence for a figdb database.
///
/// A social media corpus (objects + vocabulary + taxonomy + visual
/// vocabulary + user graph) can be serialised to a compact binary snapshot
/// and reloaded later, so the expensive preprocessing stage (paper Fig. 3's
/// training/preprocessing) happens once. Posting-style id lists use
/// delta-varint compression; strings are length-prefixed; the snapshot is
/// versioned and magic-tagged so corrupt or foreign files are rejected
/// rather than misread.
///
/// Format v2 wraps every section (meta, vocabulary, taxonomy, visual
/// vocabulary, user graph, objects) in a length prefix + CRC32, so a load
/// failure names the corrupt section and distinguishes truncation from bit
/// rot. All load/save entry points return util::Status / StatusOr with a
/// precise reason instead of an unexplained nullopt — a long-running server
/// must be able to log WHY a snapshot was rejected.
///
/// SaveCorpus goes through util::AtomicWriteFile (write `<path>.tmp`,
/// fsync, atomic rename), so a crash mid-save can never destroy the
/// previous snapshot at \p path — the durability contract the live-store
/// checkpoints (figdb_store.hpp) rely on as well.
///
/// Fail-points (util/failpoint.hpp) for fault-injection tests:
///   storage/save_io           short write inside SaveCorpus
///   storage/save_fsync        temp-file fsync failure inside SaveCorpus
///   storage/save_rename       rename failure inside SaveCorpus
///   storage/load_io           IO read failure inside LoadCorpus
///   storage/section_truncated section length check fails mid-parse
///   storage/section_crc       section checksum comparison fails
///
/// The inverted clique index is deliberately NOT serialised: it is a pure
/// function of the corpus and the correlation options, and rebuilding it is
/// cheaper and safer than keeping two versioned formats consistent.

namespace figdb::index {

inline constexpr std::uint32_t kSnapshotMagic = 0xf19db001;
/// v2: per-section CRC32 + length framing (v1 snapshots are rejected with
/// a version error; regenerate them — the corpus generator is deterministic).
inline constexpr std::uint32_t kSnapshotVersion = 2;

/// Serialises the corpus (with its full context) to a byte buffer.
std::string SerializeCorpus(const corpus::Corpus& corpus);

/// Single-object serde, shared between the snapshot objects section and the
/// write-ahead log (wal.hpp): month, topic, then delta-varint feature pairs.
/// The object's id is NOT encoded — it is positional in snapshots and
/// carried by the framing record in the WAL.
void WriteMediaObject(const corpus::MediaObject& object,
                      util::BinaryWriter* w);

/// Parses one object; \p label names the object in error messages (its
/// snapshot position or WAL sequence number).
[[nodiscard]] util::Status ReadMediaObject(util::BinaryReader* r,
                                           corpus::MediaObject* object,
                                           std::uint64_t label);

/// Parses the taxonomy section body (the bytes inside the "taxonomy"
/// length+CRC frame) into \p tax, validating structure: children must
/// follow their parents and every node index must be in range. Exposed so
/// fuzz_taxonomy can drive the exact decoder DeserializeCorpus uses and
/// then run WUP similarity queries over whatever survives validation.
[[nodiscard]] util::Status ReadTaxonomySection(util::BinaryReader* r,
                                               text::Taxonomy* tax);

/// Parses a snapshot produced by SerializeCorpus.
///   kInvalidArgument  not a figdb snapshot / unsupported version
///   kDataLoss         truncation, CRC mismatch, or structural corruption
///                     (the message names the section and the reason)
[[nodiscard]] util::StatusOr<corpus::Corpus> DeserializeCorpus(
    std::string_view bytes);

/// File wrappers. Save reports IO failures as kUnavailable; Load adds
/// kNotFound (missing file) and kUnavailable (read error) to the
/// DeserializeCorpus error space.
[[nodiscard]] util::Status SaveCorpus(const corpus::Corpus& corpus,
                                      const std::string& path);
[[nodiscard]] util::StatusOr<corpus::Corpus> LoadCorpus(const std::string& path);

}  // namespace figdb::index
