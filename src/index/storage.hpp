#pragma once

#include <optional>
#include <string>

#include "corpus/corpus.hpp"

/// \file storage.hpp
/// Binary persistence for a figdb database.
///
/// A social media corpus (objects + vocabulary + taxonomy + visual
/// vocabulary + user graph) can be serialised to a compact binary snapshot
/// and reloaded later, so the expensive preprocessing stage (paper Fig. 3's
/// training/preprocessing) happens once. Posting-style id lists use
/// delta-varint compression; strings are length-prefixed; the snapshot is
/// versioned and magic-tagged so corrupt or foreign files are rejected
/// rather than misread.
///
/// The inverted clique index is deliberately NOT serialised: it is a pure
/// function of the corpus and the correlation options, and rebuilding it is
/// cheaper and safer than keeping two versioned formats consistent.

namespace figdb::index {

inline constexpr std::uint32_t kSnapshotMagic = 0xf19db001;
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Serialises the corpus (with its full context) to a byte buffer.
std::string SerializeCorpus(const corpus::Corpus& corpus);

/// Parses a snapshot produced by SerializeCorpus. Returns std::nullopt on
/// any structural corruption (bad magic/version, truncation, dangling ids).
std::optional<corpus::Corpus> DeserializeCorpus(std::string_view bytes);

/// Convenience file wrappers. Save returns false on IO failure; Load
/// returns std::nullopt on IO failure or corruption.
bool SaveCorpus(const corpus::Corpus& corpus, const std::string& path);
std::optional<corpus::Corpus> LoadCorpus(const std::string& path);

}  // namespace figdb::index
