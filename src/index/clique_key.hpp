#pragma once

#include <cstdint>
#include <vector>

#include "corpus/media_object.hpp"

/// \file clique_key.hpp
/// Canonical 64-bit keys for FIG cliques.
///
/// The inverted index (§3.5) is keyed by clique identity — the sorted set of
/// member features. We hash the sorted FeatureKeys into 64 bits (FNV-1a);
/// with <= 2^24 distinct cliques per corpus the collision probability is
/// below 2^-15, and a collision can only merge two posting lists (adding
/// candidates, never losing them), so retrieval correctness degrades
/// gracefully rather than silently dropping results.

namespace figdb::index {

using CliqueKey = std::uint64_t;

/// \p sorted_features must be sorted ascending (core::Clique guarantees it).
inline CliqueKey MakeCliqueKey(
    const std::vector<corpus::FeatureKey>& sorted_features) {
  CliqueKey h = 0xcbf29ce484222325ULL;
  for (corpus::FeatureKey f : sorted_features) {
    h ^= f;
    h *= 0x100000001b3ULL;
    // Extra avalanche so permutation-insensitive inputs of equal XOR mass
    // do not collide trivially.
    h ^= h >> 29;
  }
  return h;
}

}  // namespace figdb::index
