#include "index/inverted_index.hpp"

#include <algorithm>

#include "util/failpoint.hpp"

namespace figdb::index {

CliqueIndex CliqueIndex::Build(const corpus::Corpus& corpus,
                               const stats::CorrelationModel& correlations,
                               const CliqueIndexOptions& options) {
  CliqueIndex idx;
  idx.options_ = options;
  for (const corpus::MediaObject& obj : corpus.Objects()) {
    // Fault injection: resource exhaustion mid-build. The already-indexed
    // prefix stays valid; the index is marked degraded so query paths can
    // tag their answers as best-effort.
    if (FIGDB_FAILPOINT("index/build_truncated")) {
      idx.degraded_ = true;
      break;
    }
    idx.AddObject(obj, correlations);
  }
  return idx;
}

void CliqueIndex::AddObject(const corpus::MediaObject& obj,
                            const stats::CorrelationModel& correlations) {
  const core::FeatureInteractionGraph fig =
      core::FeatureInteractionGraph::Build(obj, correlations,
                                           options_.type_mask);
  const std::vector<core::Clique> cliques =
      core::EnumerateCliques(fig, options_.cliques);
  for (const core::Clique& c : cliques) {
    auto& list = postings_[MakeCliqueKey(c.features)];
    // Fast path: in-order bulk build appends; out-of-order insertion keeps
    // the list sorted and duplicate-free.
    if (list.empty() || list.back() < obj.id) {
      list.push_back(obj.id);
      ++total_postings_;
    } else {
      auto it = std::lower_bound(list.begin(), list.end(), obj.id);
      if (it == list.end() || *it != obj.id) {
        list.insert(it, obj.id);
        ++total_postings_;
      }
    }
  }
}

const std::vector<corpus::ObjectId>& CliqueIndex::Lookup(
    const std::vector<corpus::FeatureKey>& sorted_features) const {
  auto it = postings_.find(MakeCliqueKey(sorted_features));
  return it == postings_.end() ? empty_ : it->second;
}

}  // namespace figdb::index
