#include "index/inverted_index.hpp"

#include <algorithm>

#include "util/failpoint.hpp"

namespace figdb::index {

CliqueIndex CliqueIndex::Build(const corpus::Corpus& corpus,
                               const stats::CorrelationModel& correlations,
                               const CliqueIndexOptions& options) {
  CliqueIndex idx;
  // The index under construction is function-local: this thread is
  // trivially its single writer.
  util::ScopedRole writer(idx.WriterCap());
  idx.options_ = options;
  for (const corpus::MediaObject& obj : corpus.Objects()) {
    // Fault injection: resource exhaustion mid-build. The already-indexed
    // prefix stays valid; the index is marked degraded so query paths can
    // tag their answers as best-effort.
    if (FIGDB_FAILPOINT("index/build_truncated")) {
      idx.degraded_ = true;
      break;
    }
    idx.AddObject(obj, correlations);
  }
  return idx;
}

void CliqueIndex::AddObject(const corpus::MediaObject& obj,
                            const stats::CorrelationModel& correlations) {
  const core::FeatureInteractionGraph fig =
      core::FeatureInteractionGraph::Build(obj, correlations,
                                           options_.type_mask);
  const std::vector<core::Clique> cliques =
      core::EnumerateCliques(fig, options_.cliques);
  for (const core::Clique& c : cliques) {
    auto [it, inserted] = postings_.try_emplace(MakeCliqueKey(c.features));
    PostingList& list = it->second;
    // A fresh list has nothing to compact: mark it current so the first
    // Lookup does not pay a pointless sweep.
    if (inserted) list.compacted_at = tombstone_generation_;
    auto& ids = list.ids;
    // Fast path: in-order bulk build appends; out-of-order insertion keeps
    // the list sorted and duplicate-free.
    if (ids.empty() || ids.back() < obj.id) {
      ids.push_back(obj.id);
      ++total_postings_;
    } else {
      auto pos = std::lower_bound(ids.begin(), ids.end(), obj.id);
      if (pos == ids.end() || *pos != obj.id) {
        ids.insert(pos, obj.id);
        ++total_postings_;
      }
    }
  }
}

void CliqueIndex::RemoveObject(corpus::ObjectId id) {
  if (tombstones_.insert(id).second) ++tombstone_generation_;
}

void CliqueIndex::CompactList(PostingList* list) const {
  if (list->compacted_at == tombstone_generation_) return;
  if (!tombstones_.empty()) {
    auto dead = [this](corpus::ObjectId id) {
      return tombstones_.count(id) != 0;
    };
    const auto first_dead =
        std::remove_if(list->ids.begin(), list->ids.end(), dead);
    total_postings_ -= std::size_t(list->ids.end() - first_dead);
    list->ids.erase(first_dead, list->ids.end());
  }
  list->compacted_at = tombstone_generation_;
}

void CliqueIndex::CompactAll() {
  for (auto it = postings_.begin(); it != postings_.end();) {
    CompactList(&it->second);
    it = it->second.ids.empty() ? postings_.erase(it) : std::next(it);
  }
  tombstones_.clear();
}

std::vector<std::pair<CliqueKey, std::vector<corpus::ObjectId>>>
CliqueIndex::DumpPostings() const {
  std::vector<std::pair<CliqueKey, std::vector<corpus::ObjectId>>> out;
  out.reserve(postings_.size());
  for (auto& [key, list] : postings_) {
    CompactList(&list);
    if (!list.ids.empty()) out.emplace_back(key, list.ids);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

const std::vector<corpus::ObjectId>& CliqueIndex::Lookup(
    const std::vector<corpus::FeatureKey>& sorted_features) const {
  auto it = postings_.find(MakeCliqueKey(sorted_features));
  if (it == postings_.end()) return empty_;
  // Pure-read fast path: with no tombstones pending every list is already
  // current (CompactAll stamps them; fresh inserts start current), so skip
  // CompactList entirely rather than proving it a no-op — this is what
  // makes concurrent Lookup over a fully compacted index race-free.
  if (!tombstones_.empty()) CompactList(&it->second);
  return it->second.ids;
}

}  // namespace figdb::index
