#pragma once

#include <memory>

#include "core/potential.hpp"
#include "core/retriever.hpp"
#include "core/similarity.hpp"
#include "corpus/corpus.hpp"
#include "index/inverted_index.hpp"
#include "index/threshold_algorithm.hpp"
#include "stats/correlation.hpp"
#include "stats/cors.hpp"
#include "stats/feature_matrix.hpp"
#include "util/query_budget.hpp"
#include "util/status.hpp"

/// \file retrieval_engine.hpp
/// End-to-end FIG retrieval (paper Fig. 3 + Algorithm 1).
///
/// Construction is the paper's training/preprocessing stage: build the
/// feature statistics, the correlation model (the six pair-wise tables,
/// lazily), and the inverted clique index. Search() is Algorithm 1:
/// compile the query to FIG cliques, pull each clique's candidates from the
/// inverted list, score them with the potential phi' (Eq. 9) and merge the
/// per-clique lists with the Threshold Algorithm.

namespace figdb::index {

struct EngineOptions {
  core::MrfOptions mrf;
  stats::CorrelationOptions correlations;
  CliqueIndexOptions index;
  /// How per-clique candidate lists are merged into the final top-k.
  enum class MergeMode { kThresholdAlgorithm, kExhaustive };
  MergeMode merge = MergeMode::kThresholdAlgorithm;
  /// Two-stage retrieval: the inverted lists + TA produce this many
  /// candidates by exact-clique score; the candidates are then re-scored
  /// with the FULL Eq. 7 potential, in which a clique whose features are
  /// absent from the object still earns its smoothing mass (the mechanism
  /// that lets FIG bridge related-but-not-identical objects). 0 disables
  /// the re-scoring stage (pure exact-clique scores).
  std::size_t rerank_candidates = 192;
  /// Feature modalities the engine uses (Fig. 5 experiments).
  std::uint32_t type_mask = core::kAllFeatures;
  /// Skip building the inverted index (sequential-only engines, e.g. the
  /// reference scorer in ablations).
  bool build_index = true;
};

class FigRetrievalEngine : public core::Retriever {
 public:
  /// Preprocessing stage; \p corpus must outlive the engine.
  FigRetrievalEngine(const corpus::Corpus& corpus, EngineOptions options);

  /// Serving-snapshot constructor: adopts pre-built substrates instead of
  /// recomputing them — \p matrix and \p correlations are the store's
  /// pinned statistics (shared across every snapshot of that store) and
  /// \p index is a fully compacted copy of the store's live index. Cost is
  /// O(1) beyond what the caller already paid, versus the full statistics
  /// rebuild of the primary constructor; this is what makes frequent epoch
  /// publication affordable. \p index must satisfy FullyCompacted() (the
  /// concurrent-Lookup precondition, FIGDB_CHECKed here).
  FigRetrievalEngine(const corpus::Corpus& corpus, EngineOptions options,
                     std::shared_ptr<const stats::FeatureMatrix> matrix,
                     std::shared_ptr<const stats::CorrelationModel> correlations,
                     CliqueIndex index);

  std::string Name() const override { return "FIG"; }

  /// Algorithm 1: index-accelerated top-k retrieval.
  std::vector<core::SearchResult> Search(const corpus::MediaObject& query,
                                         std::size_t k) const override;

  /// Scores an explicit candidate set (recommendation-style ranking).
  std::vector<core::SearchResult> Rank(
      const corpus::MediaObject& query,
      const std::vector<corpus::ObjectId>& candidates,
      std::size_t k) const override;

  /// Validating, budget-aware Search. Rejects malformed requests with a
  /// Status instead of aborting:
  ///   kInvalidArgument   empty query, k = 0, out-of-vocabulary feature
  ///   kUnavailable       engine was built without an inverted index
  ///   kDeadlineExceeded  the budget expired before ANY result was produced
  /// With an unlimited budget the results are bit-identical to Search().
  /// Under budget pressure it degrades gracefully (best-so-far results
  /// tagged truncated), shedding the stage-2 rerank before shedding
  /// candidates; see DESIGN.md "Error handling, deadlines & degraded modes".
  util::StatusOr<core::SearchResponse> TrySearch(
      const corpus::MediaObject& query, std::size_t k,
      const util::QueryBudget& budget = {}) const;

  /// Validating, budget-aware Rank. Adds kNotFound for candidate ids past
  /// the corpus end. Candidates are scored in the given order; on budget
  /// exhaustion the unscored tail is shed and the response is `truncated`.
  util::StatusOr<core::SearchResponse> TryRank(
      const corpus::MediaObject& query,
      const std::vector<corpus::ObjectId>& candidates, std::size_t k,
      const util::QueryBudget& budget = {}) const;

  /// Sequential reference retrieval (§3.5 pre-index baseline): applies the
  /// same two-stage semantics (candidates = objects containing at least one
  /// query clique, scored with the full model) by brute force. Agrees with
  /// Search() whenever rerank_candidates covers the whole candidate set —
  /// asserted by the integration tests.
  std::vector<core::SearchResult> SearchSequential(
      const corpus::MediaObject& query, std::size_t k) const;

  /// Updates the MRF λ parameters (used by the trainer). NOT safe while
  /// concurrent readers are scoring; the serving layer never calls it on a
  /// published snapshot.
  void SetLambda(const std::vector<double>& lambda);

  /// Stage-1 candidate list for ONE query clique: inverted-list lookup +
  /// exact-containment scoring. This is the unit the serving layer shards
  /// across worker threads; BuildScoredLists is exactly a loop over this,
  /// so a parallel per-clique build followed by an in-clique-order merge
  /// reproduces the sequential lists bit for bit. Thread-safe under the
  /// index concurrency contract (fully compacted index, no writer).
  ScoredList BuildCliqueList(const core::Clique& clique) const;

  /// Validates \p query and \p k exactly as TrySearch does (public so the
  /// serving layer can reject malformed requests before admission).
  util::Status ValidateQuery(const corpus::MediaObject& query,
                             std::size_t k) const;

  /// False for engines built with build_index = false; Index() must not be
  /// called on them (the serving layer checks before dereferencing).
  bool HasIndex() const { return index_ != nullptr; }
  const CliqueIndex& Index() const { return *index_; }
  const core::FigScorer& Scorer() const { return *scorer_; }
  const corpus::Corpus& GetCorpus() const { return *corpus_; }
  const EngineOptions& Options() const { return options_; }

  /// Shared substrates, reused by the recommender and the baselines so the
  /// expensive statistics are computed once per corpus.
  std::shared_ptr<const stats::FeatureMatrix> Matrix() const {
    return matrix_;
  }
  std::shared_ptr<const stats::CorrelationModel> Correlations() const {
    return correlations_;
  }
  std::shared_ptr<const stats::CorSCalculator> CorS() const { return cors_; }
  /// Full-model evaluator (partial cliques credited via smoothing).
  std::shared_ptr<const core::PotentialEvaluator> Potential() const {
    return full_potential_;
  }
  /// Exact-containment evaluator (stage-1 / inverted-list scoring).
  std::shared_ptr<const core::PotentialEvaluator> ExactPotential() const {
    return exact_potential_;
  }

 private:
  std::vector<ScoredList> BuildScoredLists(const core::QueryModel& qm,
                                           util::BudgetTracker* budget,
                                           bool* truncated) const;
  /// Shared Search core: both Search (null budget) and TrySearch run this,
  /// so unbudgeted TrySearch is bit-identical to Search by construction.
  core::SearchResponse SearchWithBudget(const core::QueryModel& qm,
                                        std::size_t k,
                                        util::BudgetTracker* budget) const;
  /// Shared tail of both constructors: builds the potential evaluators and
  /// scorer over the already-set matrix/correlations.
  void BuildScoringStack();

  const corpus::Corpus* corpus_;
  EngineOptions options_;
  std::shared_ptr<const stats::FeatureMatrix> matrix_;
  std::shared_ptr<const stats::CorrelationModel> correlations_;
  std::shared_ptr<const stats::CorSCalculator> cors_;
  std::shared_ptr<core::PotentialEvaluator> exact_potential_;
  std::shared_ptr<core::PotentialEvaluator> full_potential_;
  std::unique_ptr<core::FigScorer> scorer_;  // full model
  std::unique_ptr<CliqueIndex> index_;
};

}  // namespace figdb::index
