#include "index/threshold_algorithm.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "util/failpoint.hpp"
#include "util/top_k.hpp"

namespace figdb::index {
namespace {

/// True when the merge must stop for deadline reasons: either the real
/// clock expired or the `ta/deadline` fail-point injected expiry.
bool DeadlineHit(util::BudgetTracker* budget) {
  if (budget == nullptr) return false;
  if (FIGDB_FAILPOINT("ta/deadline")) {
    budget->ForceDeadline();
    return true;
  }
  return budget->CheckDeadline();
}

void SortDescending(std::vector<core::SearchResult>* entries) {
  std::sort(entries->begin(), entries->end(),
            [](const core::SearchResult& a, const core::SearchResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.object < b.object;
            });
}

std::vector<core::SearchResult> TakeTopK(
    util::TopK<corpus::ObjectId>* topk) {
  std::vector<core::SearchResult> out;
  for (const auto& e : topk->Take()) out.push_back({e.id, e.score});
  return out;
}

}  // namespace

std::vector<core::SearchResult> ExhaustiveMerge(
    const std::vector<ScoredList>& lists, std::size_t k,
    util::BudgetTracker* budget, bool* truncated, double* stop_bound) {
  std::unordered_map<corpus::ObjectId, double> totals;
  for (const ScoredList& list : lists)
    for (const core::SearchResult& e : list.entries)
      totals[e.object] += e.score;
  util::TopK<corpus::ObjectId> topk(k);
  if (budget == nullptr) {
    for (const auto& [object, score] : totals) topk.Offer(score, object);
    if (stop_bound != nullptr)
      *stop_bound = topk.Full() ? topk.KthScore() : 0.0;
    return TakeTopK(&topk);
  }
  // Budgeted path: aggregation above is always complete (scores stay
  // exact); the budget caps how many distinct candidates are offered, in
  // deterministic first-encounter order.
  std::unordered_set<corpus::ObjectId> offered;
  offered.reserve(totals.size());
  for (const ScoredList& list : lists) {
    for (const core::SearchResult& e : list.entries) {
      if (!offered.insert(e.object).second) continue;
      if (!budget->ChargeScored()) {
        if (truncated != nullptr) *truncated = true;
        // Unoffered objects may carry any score: nothing is certified.
        if (stop_bound != nullptr)
          *stop_bound = std::numeric_limits<double>::infinity();
        return TakeTopK(&topk);
      }
      topk.Offer(totals[e.object], e.object);
    }
  }
  if (stop_bound != nullptr)
    *stop_bound = topk.Full() ? topk.KthScore() : 0.0;
  return TakeTopK(&topk);
}

std::vector<core::SearchResult> NraMerge(std::vector<ScoredList> lists,
                                         std::size_t k) {
  struct Bounds {
    double lower = 0.0;
    std::vector<std::uint32_t> seen_lists;
  };
  for (auto& list : lists) SortDescending(&list.entries);
  std::unordered_map<corpus::ObjectId, Bounds> bounds;
  std::size_t max_len = 0;
  for (const auto& list : lists)
    max_len = std::max(max_len, list.entries.size());

  std::vector<double> frontier(lists.size(), 0.0);
  for (std::size_t depth = 0; depth < max_len; ++depth) {
    double total_frontier = 0.0;
    for (std::size_t l = 0; l < lists.size(); ++l) {
      const auto& entries = lists[l].entries;
      if (depth < entries.size()) {
        frontier[l] = entries[depth].score;
        Bounds& b = bounds[entries[depth].object];
        b.lower += entries[depth].score;
        b.seen_lists.push_back(std::uint32_t(l));
      } else {
        frontier[l] = 0.0;
      }
      total_frontier += frontier[l];
    }
    // Termination check: k-th best lower bound vs best upper bound of any
    // object outside that provisional top-k.
    util::TopK<corpus::ObjectId> lower_topk(k);
    for (const auto& [object, b] : bounds) lower_topk.Offer(b.lower, object);
    if (!lower_topk.Full()) continue;
    const double kth = lower_topk.KthScore();
    std::unordered_set<corpus::ObjectId> provisional;
    {
      util::TopK<corpus::ObjectId> copy(k);
      for (const auto& [object, b] : bounds) copy.Offer(b.lower, object);
      for (const auto& e : copy.Take()) provisional.insert(e.id);
    }
    double best_outside_upper = 0.0;
    for (const auto& [object, b] : bounds) {
      if (provisional.count(object)) continue;
      double upper = b.lower + total_frontier;
      for (std::uint32_t l : b.seen_lists) upper -= frontier[l];
      best_outside_upper = std::max(best_outside_upper, upper);
    }
    // An entirely unseen object could still reach total_frontier.
    best_outside_upper = std::max(best_outside_upper, total_frontier);
    if (kth >= best_outside_upper) break;
  }

  util::TopK<corpus::ObjectId> topk(k);
  for (const auto& [object, b] : bounds) topk.Offer(b.lower, object);
  return TakeTopK(&topk);
}

std::vector<core::SearchResult> ThresholdMerge(std::vector<ScoredList> lists,
                                               std::size_t k,
                                               util::BudgetTracker* budget,
                                               bool* truncated,
                                               double* stop_bound) {
  // Per-list random-access maps + sorted lists.
  std::vector<std::unordered_map<corpus::ObjectId, double>> maps(
      lists.size());
  std::size_t max_len = 0;
  for (std::size_t l = 0; l < lists.size(); ++l) {
    SortDescending(&lists[l].entries);
    maps[l].reserve(lists[l].entries.size());
    for (const core::SearchResult& e : lists[l].entries)
      maps[l][e.object] += e.score;
    max_len = std::max(max_len, lists[l].entries.size());
  }

  util::TopK<corpus::ObjectId> topk(k);
  std::unordered_set<corpus::ObjectId> seen;
  // Bound on objects never surfaced by sorted access: 0 when the lists
  // drain fully (everything listed was seen), the frontier threshold when
  // the TA rule stops early, +inf when a deadline cut the walk short.
  double unseen_bound = 0.0;
  for (std::size_t depth = 0; depth < max_len; ++depth) {
    if (DeadlineHit(budget)) {
      if (truncated != nullptr) *truncated = true;
      unseen_bound = std::numeric_limits<double>::infinity();
      break;
    }
    double threshold = 0.0;
    for (std::size_t l = 0; l < lists.size(); ++l) {
      const auto& entries = lists[l].entries;
      if (depth < entries.size()) {
        threshold += entries[depth].score;
        const corpus::ObjectId obj = entries[depth].object;
        if (seen.insert(obj).second) {
          if (budget != nullptr && !budget->ChargeScored()) {
            // Candidate budget exhausted: return best-so-far. Every result
            // already offered carries its exact full aggregate — but the
            // unwalked remainder certifies nothing.
            if (truncated != nullptr) *truncated = true;
            if (stop_bound != nullptr)
              *stop_bound = std::numeric_limits<double>::infinity();
            return TakeTopK(&topk);
          }
          // Random access: aggregate the object's score across all lists.
          double total = 0.0;
          for (const auto& m : maps) {
            auto it = m.find(obj);
            if (it != m.end()) total += it->second;
          }
          topk.Offer(total, obj);
        }
      }
    }
    // TA stopping rule: no unseen object can beat the current k-th score.
    if (topk.Full() && topk.KthScore() >= threshold) {
      unseen_bound = threshold;
      break;
    }
  }
  // Anything not returned is either unseen (<= unseen_bound) or was seen
  // and displaced by the k-th score; the certificate is the max of the two.
  if (stop_bound != nullptr)
    *stop_bound = std::max(unseen_bound, topk.Full() ? topk.KthScore() : 0.0);
  return TakeTopK(&topk);
}

}  // namespace figdb::index
